//! Crash recovery for one shard: load the last installed snapshot, replay
//! the WAL's trusted prefix on top, truncate any torn tail, and report what
//! happened so the caller can (a) resume appending and (b) hand suspicious
//! gaps to the audit → quarantine path.
//!
//! ## Soundness
//!
//! Replay only ever *truncates* at the first invalid byte; it never invents
//! or reorders events. The recovered state is therefore exactly the
//! uninterrupted state as of some durable prefix of the ingest stream. Any
//! events after that prefix are either re-sent by the server's redo buffer
//! (byte-identical recovery) or counted as lost — and a lost crossing can
//! only *widen* a query's `[lower, upper]` bracket via the degradation
//! bounds, never narrow it past the truth.

use std::collections::HashMap;
use std::path::Path;

use stq_core::tracker::Crossing;
use stq_forms::TrackingForm;

use crate::snapshot::{load_snapshot, state_digest};
use crate::wal::{replay_wal, ShardDurability};

/// Applies one crossing to an edge → form map, skipping (and reporting
/// `false` for) an event whose timestamp would violate the per-direction
/// monotonicity invariant. Live ingest and recovery replay share this
/// function, so the rebuilt state is byte-identical to the uninterrupted one
/// *by construction* — both sides make the same accept/reject decision for
/// every event in sequence order.
pub fn apply_crossing(forms: &mut HashMap<usize, TrackingForm>, c: &Crossing) -> bool {
    let form = forms.entry(c.edge).or_insert_with(|| TrackingForm::from_sequences(vec![], vec![]));
    if form.timestamps(c.forward).last().is_some_and(|&last| c.time < last) {
        return false;
    }
    form.record(c.forward, c.time);
    true
}

/// What recovery found on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard id recovered.
    pub shard: usize,
    /// WAL sequence the snapshot covered (0 = fresh/base snapshot).
    pub snapshot_seq: u64,
    /// Checksum-valid WAL records replayed on top of the snapshot.
    pub wal_records: u64,
    /// Highest sequence number in the recovered state.
    pub recovered_seq: u64,
    /// The WAL ended in a torn or corrupt tail that was truncated.
    pub torn_tail: bool,
    /// Bytes discarded from the tail.
    pub discarded_bytes: u64,
    /// A checksum-valid record was found out of sequence (mid-log damage);
    /// the state is still sound but the gap needs auditing.
    pub seq_break: bool,
}

/// A recovered shard: rebuilt state plus a resumable durability handle.
#[derive(Debug)]
pub struct RecoveredShard {
    /// Edge → tracking form, byte-identical to the durable prefix.
    pub forms: HashMap<usize, TrackingForm>,
    /// Durability handle resumed at the recovered sequence (WAL truncated to
    /// its valid prefix).
    pub durability: ShardDurability,
    /// What happened.
    pub report: RecoveryReport,
}

impl RecoveredShard {
    /// Digest of the recovered state (see [`state_digest`]).
    pub fn digest(&self) -> u64 {
        state_digest(&self.forms)
    }
}

/// Recovers shard `shard` from `root/shard-<shard>/`: snapshot first, then
/// the WAL's trusted prefix, truncating anything after it. Events are
/// replayed through [`apply_crossing`] — the same accept/reject rule the
/// live ingest path uses — so the rebuilt state matches the uninterrupted
/// one bit for bit.
///
/// Errors are real I/O failures or a corrupt snapshot
/// ([`std::io::ErrorKind::InvalidData`]); a missing snapshot recovers to an
/// empty state and a missing WAL to zero records.
pub fn recover_shard(
    root: &Path,
    shard: usize,
    snapshot_every: u64,
    sync_every: u64,
) -> std::io::Result<RecoveredShard> {
    let dir = ShardDurability::shard_dir(root, shard);
    let snap = load_snapshot(&dir)?;
    let (mut forms, snapshot_seq) = match &snap {
        Some(s) => (s.restore(), s.covered_seq),
        None => (HashMap::new(), 0),
    };
    let replay = replay_wal(&dir.join("wal.log"), snapshot_seq)?;
    for (_seq, c) in &replay.events {
        apply_crossing(&mut forms, c);
    }
    let recovered_seq = replay.last_seq(snapshot_seq);
    let report = RecoveryReport {
        shard,
        snapshot_seq,
        wal_records: replay.events.len() as u64,
        recovered_seq,
        torn_tail: replay.torn,
        discarded_bytes: replay.file_bytes - replay.valid_bytes,
        seq_break: replay.seq_break,
    };
    let durability = ShardDurability::resume(
        root,
        shard,
        replay.valid_bytes,
        recovered_seq,
        replay.events.len() as u64,
        snapshot_every,
        sync_every,
    )?;
    Ok(RecoveredShard { forms, durability, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use stq_core::tracker::Crossing;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-rec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn ev(seq: u64) -> Crossing {
        Crossing { time: seq as f64 * 0.25, edge: (seq % 5) as usize, forward: seq % 3 != 0 }
    }

    /// Runs `n` events through a fresh shard with the given cadence,
    /// returning the live in-memory state and the durability handle.
    fn run_shard(
        root: &Path,
        n: u64,
        snapshot_every: u64,
        sync_every: u64,
    ) -> (HashMap<usize, TrackingForm>, ShardDurability) {
        let mut forms: HashMap<usize, TrackingForm> = HashMap::new();
        let mut d =
            ShardDurability::initialize(root, 0, &forms, 0, snapshot_every, sync_every).unwrap();
        for seq in 1..=n {
            let c = ev(seq);
            forms
                .entry(c.edge)
                .or_insert_with(|| TrackingForm::from_sequences(vec![], vec![]))
                .record(c.forward, c.time);
            d.append(seq, &c, &forms).unwrap();
        }
        (forms, d)
    }

    #[test]
    fn clean_shutdown_recovers_byte_identical_state() {
        let root = tmpdir("clean");
        let (forms, mut d) = run_shard(&root, 137, 32, 8);
        d.sync().unwrap();
        drop(d);
        let rec = recover_shard(&root, 0, 32, 8).unwrap();
        assert_eq!(rec.digest(), state_digest(&forms));
        assert_eq!(rec.report.recovered_seq, 137);
        assert!(!rec.report.torn_tail && !rec.report.seq_break);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn crash_with_torn_tail_recovers_durable_prefix() {
        let root = tmpdir("torn");
        let (_forms, d) = run_shard(&root, 100, 1_000, 16);
        // Last sync at seq 96; crash keeps 2.5 of the 4 unsynced records.
        let cut = crate::wal::RECORD_LEN * 2 + crate::wal::RECORD_LEN / 2;
        d.kill_cut(cut).unwrap();

        let rec = recover_shard(&root, 0, 1_000, 16).unwrap();
        assert_eq!(rec.report.recovered_seq, 98);
        assert!(rec.report.torn_tail);
        assert!(rec.report.discarded_bytes > 0);

        // The recovered state must equal an uninterrupted run over the
        // surviving prefix, bit for bit.
        let oracle_root = tmpdir("torn-oracle");
        let (oracle, _) = run_shard(&oracle_root, 98, 1_000, 16);
        assert_eq!(rec.digest(), state_digest(&oracle));
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(&oracle_root).ok();
    }

    #[test]
    fn recovery_resumes_appends_without_gaps() {
        let root = tmpdir("resume");
        let (_, d) = run_shard(&root, 50, 1_000, 10);
        d.kill_cut(0).unwrap(); // lose everything unsynced (last sync at 50)

        let mut rec = recover_shard(&root, 0, 1_000, 10).unwrap();
        let next = rec.report.recovered_seq + 1;
        for seq in next..next + 20 {
            let c = ev(seq);
            rec.forms
                .entry(c.edge)
                .or_insert_with(|| TrackingForm::from_sequences(vec![], vec![]))
                .record(c.forward, c.time);
            rec.durability.append(seq, &c, &rec.forms).unwrap();
        }
        rec.durability.sync().unwrap();
        drop(rec);

        let rec2 = recover_shard(&root, 0, 1_000, 10).unwrap();
        assert_eq!(rec2.report.recovered_seq, next + 19);
        assert!(!rec2.report.seq_break);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn snapshot_rollover_bounds_wal_replay() {
        let root = tmpdir("rollover");
        let (forms, mut d) = run_shard(&root, 100, 30, 5);
        d.sync().unwrap();
        drop(d);
        let rec = recover_shard(&root, 0, 30, 5).unwrap();
        // Snapshots rolled at 30/60/90 → at most 10 records left to replay.
        assert_eq!(rec.report.snapshot_seq, 90);
        assert_eq!(rec.report.wal_records, 10);
        assert_eq!(rec.digest(), state_digest(&forms));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_directory_recovers_empty_state() {
        let root = tmpdir("empty");
        let rec = recover_shard(&root, 3, 64, 8).unwrap();
        assert!(rec.forms.is_empty());
        assert_eq!(rec.report.recovered_seq, 0);
        std::fs::remove_dir_all(&root).ok();
    }
}
