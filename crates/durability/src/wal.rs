//! The per-shard write-ahead log: length-prefixed, CRC-checksummed records
//! of ingested boundary-crossing events.
//!
//! ## Durability model
//!
//! [`WalWriter`] distinguishes *written* bytes (handed to the OS, possibly
//! sitting in a buffer) from *synced* bytes (flushed and — in a real
//! deployment — fsynced). A kill -9-style crash preserves every synced byte
//! and an arbitrary prefix of the unsynced suffix, including a cut in the
//! middle of a record (a torn write). [`WalWriter::kill_cut`] applies
//! exactly that: the surviving length is chosen by the caller (normally a
//! seeded `stq_net::DurabilityFaultPlan`), so crash experiments replay
//! bit-for-bit.
//!
//! ## Replay
//!
//! [`replay_wal`] walks the log from the front and stops at the first
//! framing, checksum, or sequence violation; everything before the stop is
//! trusted (CRC-verified, contiguous sequence numbers), everything after is
//! the torn tail, reported so the caller can truncate the file and hand the
//! gap to the quarantine path.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use stq_core::tracker::Crossing;
use stq_forms::TrackingForm;

use crate::crc::crc32;
use crate::snapshot::{install_snapshot, ShardSnapshot};

/// Fixed payload size: `seq u64 + edge u64 + flags u8 + time-bits u64`.
pub(crate) const PAYLOAD_LEN: usize = 25;
/// Header size: `len u32 + crc u32`.
pub(crate) const HEADER_LEN: usize = 8;
/// Full record size on disk.
pub const RECORD_LEN: u64 = (HEADER_LEN + PAYLOAD_LEN) as u64;

pub(crate) fn encode_payload(seq: u64, c: &Crossing) -> [u8; PAYLOAD_LEN] {
    let mut p = [0u8; PAYLOAD_LEN];
    p[0..8].copy_from_slice(&seq.to_le_bytes());
    c.encode_into(&mut p[8..]);
    p
}

pub(crate) fn decode_payload(p: &[u8]) -> Option<(u64, Crossing)> {
    if p.len() != PAYLOAD_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(p[0..8].try_into().unwrap());
    Crossing::decode(&p[8..]).map(|c| (seq, c))
}

/// An append-only writer over one shard's log file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    /// Logical length: every byte appended, including buffered ones.
    written: u64,
    /// Durable boundary: bytes guaranteed to survive a crash.
    synced: u64,
    last_seq: u64,
    records: u64,
}

impl WalWriter {
    /// Creates (truncating) a fresh log whose first record will carry
    /// `base_seq + 1`.
    pub fn create(path: &Path, base_seq: u64) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            written: 0,
            synced: 0,
            last_seq: base_seq,
            records: 0,
        })
    }

    /// Re-opens a recovered log for appending: the file is truncated to
    /// `valid_len` (dropping any torn tail) and the writer resumes after
    /// `last_seq`.
    pub fn resume(
        path: &Path,
        valid_len: u64,
        last_seq: u64,
        records: u64,
    ) -> std::io::Result<Self> {
        // Deliberately no `truncate(true)`: the surviving prefix must be
        // kept; `set_len` below drops only the torn tail.
        let file = OpenOptions::new().create(true).truncate(false).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(WalWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            written: valid_len,
            synced: valid_len,
            last_seq,
            records,
        })
    }

    /// Appends one record. `seq` must continue the shard's contiguous
    /// sequence — the invariant replay uses to prove nothing vanished
    /// mid-log.
    pub fn append(&mut self, seq: u64, c: &Crossing) -> std::io::Result<()> {
        assert_eq!(seq, self.last_seq + 1, "WAL sequence must be contiguous");
        let payload = encode_payload(seq, c);
        let mut rec = [0u8; HEADER_LEN + PAYLOAD_LEN];
        rec[0..4].copy_from_slice(&(PAYLOAD_LEN as u32).to_le_bytes());
        rec[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        rec[8..].copy_from_slice(&payload);
        self.file.write_all(&rec)?;
        self.written += RECORD_LEN;
        self.last_seq = seq;
        self.records += 1;
        Ok(())
    }

    /// Appends a batch of records as **one** length-prefixed frame: a single
    /// header whose length is `k × PAYLOAD_LEN` and whose CRC covers the
    /// concatenated payloads, followed by the `k` fixed-size payloads. The
    /// batch's sequence numbers must continue the log contiguously.
    ///
    /// Replay is format-compatible with [`WalWriter::append`]: a
    /// single-record frame is byte-identical to the classic record, and
    /// [`replay_wal`] accepts any mix of frame sizes. A torn cut inside a
    /// batch frame loses the whole frame — the group either commits or does
    /// not, which is exactly the group-commit contract.
    pub fn append_batch(&mut self, records: &[(u64, Crossing)]) -> std::io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(records.len() * PAYLOAD_LEN);
        for &(seq, ref c) in records {
            assert_eq!(seq, self.last_seq + 1, "WAL sequence must be contiguous");
            payload.extend_from_slice(&encode_payload(seq, c));
            self.last_seq = seq;
        }
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&crc32(&payload).to_le_bytes());
        self.file.write_all(&header)?;
        self.file.write_all(&payload)?;
        self.written += (HEADER_LEN + payload.len()) as u64;
        self.records += records.len() as u64;
        Ok(())
    }

    /// Flushes and marks everything written so far as durable. Returns the
    /// highest sequence number now guaranteed to survive a crash.
    pub fn sync(&mut self) -> std::io::Result<u64> {
        self.file.flush()?;
        self.synced = self.written;
        Ok(self.last_seq)
    }

    /// Truncates the log to empty after a snapshot covering `covered_seq`
    /// was installed; subsequent appends continue the sequence.
    pub fn reset_after_snapshot(&mut self, covered_seq: u64) -> std::io::Result<()> {
        assert_eq!(covered_seq, self.last_seq, "snapshot must cover the full log");
        self.file.flush()?;
        let file = self.file.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        self.written = 0;
        self.synced = 0;
        self.records = 0;
        Ok(())
    }

    /// Bytes appended but not yet durable.
    pub fn unsynced_bytes(&self) -> u64 {
        self.written - self.synced
    }

    /// Highest appended sequence number.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Records currently in the log (since the last snapshot).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Simulates a kill -9 at this instant: synced bytes survive, plus the
    /// first `surviving_unsynced` bytes of the unsynced suffix (a torn write
    /// when that lands mid-record). Consumes the writer — the process is
    /// dead.
    pub fn kill_cut(mut self, surviving_unsynced: u64) -> std::io::Result<u64> {
        self.file.flush()?;
        let keep = self.synced + surviving_unsynced.min(self.written - self.synced);
        let file = self.file.get_mut();
        file.set_len(keep)?;
        Ok(keep)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The outcome of replaying one shard's log.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReplay {
    /// Recovered events in sequence order, each tagged with its seq.
    pub events: Vec<(u64, Crossing)>,
    /// Bytes of the valid prefix (where replay stopped trusting the file).
    pub valid_bytes: u64,
    /// Total bytes on disk (> `valid_bytes` means a torn or corrupt tail).
    pub file_bytes: u64,
    /// A framing or checksum failure truncated the tail.
    pub torn: bool,
    /// A checksum-valid record carried a non-contiguous sequence number —
    /// evidence of mid-log corruption, not just a torn tail.
    pub seq_break: bool,
}

impl WalReplay {
    /// Highest recovered sequence number, or `base_seq` when empty.
    pub fn last_seq(&self, base_seq: u64) -> u64 {
        self.events.last().map(|&(s, _)| s).unwrap_or(base_seq)
    }
}

/// Replays the log at `path`, trusting only the checksum-valid,
/// sequence-contiguous prefix that follows `base_seq` (the sequence number
/// the snapshot already covers). A missing file replays as empty.
pub fn replay_wal(path: &Path, base_seq: u64) -> std::io::Result<WalReplay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let file_bytes = bytes.len() as u64;
    let mut events = Vec::new();
    let mut off = 0usize;
    let mut expected = base_seq + 1;
    let mut torn = false;
    let mut seq_break = false;
    'frames: while off + HEADER_LEN <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        // A frame carries one or more fixed-size payloads (a group-commit
        // batch writes them all behind a single header and checksum).
        if len == 0 || len % PAYLOAD_LEN != 0 || off + HEADER_LEN + len > bytes.len() {
            torn = true; // nonsense length or truncated frame
            break;
        }
        let payload = &bytes[off + HEADER_LEN..off + HEADER_LEN + len];
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        let frame_start = events.len();
        for rec in payload.chunks_exact(PAYLOAD_LEN) {
            let Some((seq, c)) = decode_payload(rec) else {
                torn = true;
                // The frame is all-or-nothing: `valid_bytes` stops before
                // it, so none of its records may be trusted either.
                events.truncate(frame_start);
                break 'frames;
            };
            if seq != expected {
                seq_break = true; // valid record, wrong position: mid-log damage
                events.truncate(frame_start);
                break 'frames;
            }
            events.push((seq, c));
            expected += 1;
        }
        off += HEADER_LEN + len;
    }
    if off < bytes.len() && !torn && !seq_break {
        torn = true; // trailing garbage shorter than a header
    }
    Ok(WalReplay { events, valid_bytes: off as u64, file_bytes, torn, seq_break })
}

/// The worker-side durability handle for one shard: WAL appends, periodic
/// syncs, and snapshot rollover in one place.
#[derive(Debug)]
pub struct ShardDurability {
    dir: PathBuf,
    shard: usize,
    wal: WalWriter,
    snapshot_every: u64,
    sync_every: u64,
    since_snapshot: u64,
    since_sync: u64,
}

/// What a [`ShardDurability::append`] made durable, if anything.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableMark {
    /// Highest sequence now guaranteed to survive a crash (after a sync or
    /// snapshot), `None` when this append only buffered.
    pub durable_seq: Option<u64>,
    /// This append rolled the log into a fresh snapshot.
    pub snapshotted: bool,
}

impl ShardDurability {
    /// The directory holding one shard's snapshot and log.
    pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
        root.join(format!("shard-{shard}"))
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Initializes fresh durable state for a shard: installs a base snapshot
    /// of `forms` covering `base_seq` and creates an empty log.
    pub fn initialize(
        root: &Path,
        shard: usize,
        forms: &HashMap<usize, TrackingForm>,
        base_seq: u64,
        snapshot_every: u64,
        sync_every: u64,
    ) -> std::io::Result<Self> {
        let dir = Self::shard_dir(root, shard);
        std::fs::create_dir_all(&dir)?;
        install_snapshot(&dir, &ShardSnapshot::capture(shard, base_seq, forms))?;
        let wal = WalWriter::create(&Self::wal_path(&dir), base_seq)?;
        Ok(ShardDurability {
            dir,
            shard,
            wal,
            snapshot_every: snapshot_every.max(1),
            sync_every: sync_every.max(1),
            since_snapshot: 0,
            since_sync: 0,
        })
    }

    /// Resumes after recovery: the log is truncated to its valid prefix and
    /// appends continue from `last_seq`.
    pub fn resume(
        root: &Path,
        shard: usize,
        valid_len: u64,
        last_seq: u64,
        records: u64,
        snapshot_every: u64,
        sync_every: u64,
    ) -> std::io::Result<Self> {
        let dir = Self::shard_dir(root, shard);
        std::fs::create_dir_all(&dir)?;
        let wal = WalWriter::resume(&Self::wal_path(&dir), valid_len, last_seq, records)?;
        Ok(ShardDurability {
            dir,
            shard,
            wal,
            snapshot_every: snapshot_every.max(1),
            sync_every: sync_every.max(1),
            since_snapshot: records,
            since_sync: 0,
        })
    }

    /// Appends one crossing, then syncs or snapshots when the respective
    /// interval is due. `forms` is the shard's in-memory state *including*
    /// this crossing — the state a due snapshot must capture.
    pub fn append(
        &mut self,
        seq: u64,
        c: &Crossing,
        forms: &HashMap<usize, TrackingForm>,
    ) -> std::io::Result<DurableMark> {
        self.wal.append(seq, c)?;
        self.since_snapshot += 1;
        self.since_sync += 1;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot_now(forms)?;
            return Ok(DurableMark { durable_seq: Some(seq), snapshotted: true });
        }
        if self.since_sync >= self.sync_every {
            let durable = self.wal.sync()?;
            self.since_sync = 0;
            return Ok(DurableMark { durable_seq: Some(durable), snapshotted: false });
        }
        Ok(DurableMark::default())
    }

    /// Group commit: appends `records` as one WAL frame (see
    /// [`WalWriter::append_batch`]) and makes the whole batch durable with
    /// a **single** sync — or a snapshot rollover when one is due. `forms`
    /// is the shard's in-memory state *including* every record of the
    /// batch. The batch always returns a durable sequence: the group either
    /// commits as a unit or (on a crash mid-frame) is lost as a unit and
    /// re-supplied by the server's redo buffer.
    pub fn append_batch(
        &mut self,
        records: &[(u64, Crossing)],
        forms: &HashMap<usize, TrackingForm>,
    ) -> std::io::Result<DurableMark> {
        if records.is_empty() {
            return Ok(DurableMark::default());
        }
        self.wal.append_batch(records)?;
        self.since_snapshot += records.len() as u64;
        self.since_sync += records.len() as u64;
        if self.since_snapshot >= self.snapshot_every {
            self.snapshot_now(forms)?;
            return Ok(DurableMark { durable_seq: Some(self.wal.last_seq()), snapshotted: true });
        }
        let durable = self.wal.sync()?;
        self.since_sync = 0;
        Ok(DurableMark { durable_seq: Some(durable), snapshotted: false })
    }

    /// Installs a snapshot of `forms` now and truncates the log.
    pub fn snapshot_now(&mut self, forms: &HashMap<usize, TrackingForm>) -> std::io::Result<()> {
        let covered = self.wal.last_seq();
        install_snapshot(&self.dir, &ShardSnapshot::capture(self.shard, covered, forms))?;
        self.wal.reset_after_snapshot(covered)?;
        self.since_snapshot = 0;
        self.since_sync = 0;
        Ok(())
    }

    /// Flushes the log, making everything appended durable.
    pub fn sync(&mut self) -> std::io::Result<u64> {
        self.since_sync = 0;
        self.wal.sync()
    }

    /// Highest appended sequence number.
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    /// Bytes that a crash right now would expose to loss.
    pub fn unsynced_bytes(&self) -> u64 {
        self.wal.unsynced_bytes()
    }

    /// Simulates a kill -9 (see [`WalWriter::kill_cut`]). Consumes the
    /// handle.
    pub fn kill_cut(self, surviving_unsynced: u64) -> std::io::Result<u64> {
        self.wal.kill_cut(surviving_unsynced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("stq-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn ev(seq: u64) -> Crossing {
        Crossing { time: seq as f64 * 0.5, edge: (seq % 7) as usize, forward: seq % 2 == 0 }
    }

    #[test]
    fn roundtrip_replays_every_record() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for s in 1..=100u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 100);
        assert!(!r.torn && !r.seq_break);
        assert_eq!(r.valid_bytes, r.file_bytes);
        for (i, &(s, c)) in r.events.iter().enumerate() {
            assert_eq!(s, i as u64 + 1);
            assert_eq!(c, ev(s));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_record() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for s in 1..=10u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        // Cut mid-record: keep 7 full records plus half of the 8th.
        let keep = 7 * RECORD_LEN + RECORD_LEN / 2;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 7);
        assert!(r.torn);
        assert!(!r.seq_break);
        assert_eq!(r.valid_bytes, 7 * RECORD_LEN);
        assert_eq!(r.file_bytes, keep);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_stops_replay_and_flags_torn() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for s in 1..=5u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = 2 * RECORD_LEN as usize + HEADER_LEN + 3; // payload of record 3
        bytes[victim] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 2, "replay trusts only the prefix before the flip");
        assert!(r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_cut_preserves_synced_prefix() {
        let dir = tmpdir("kill");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for s in 1..=6u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        for s in 7..=10u64 {
            w.append(s, &ev(s)).unwrap();
        }
        assert_eq!(w.unsynced_bytes(), 4 * RECORD_LEN);
        // The crash keeps 1.5 unsynced records: 7 survives whole, 8 is torn.
        w.kill_cut(RECORD_LEN + RECORD_LEN / 2).unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.last_seq(0), 7);
        assert!(r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_continues_the_sequence() {
        let dir = tmpdir("resume");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for s in 1..=4u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        let r = replay_wal(&path, 0).unwrap();
        let mut w = WalWriter::resume(&path, r.valid_bytes, r.last_seq(0), 4).unwrap();
        for s in 5..=8u64 {
            w.append(s, &ev(s)).unwrap();
        }
        w.sync().unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 8);
        assert!(!r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn sequence_jump_rejected_at_append() {
        let dir = tmpdir("jump");
        let mut w = WalWriter::create(&dir.join("wal.log"), 0).unwrap();
        w.append(1, &ev(1)).unwrap();
        let _ = w.append(3, &ev(3));
    }

    #[test]
    fn batch_frames_replay_like_singles() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        // Mixed framing: singles, a batch, more singles, another batch.
        w.append(1, &ev(1)).unwrap();
        w.append(2, &ev(2)).unwrap();
        let batch: Vec<(u64, Crossing)> = (3..=7u64).map(|s| (s, ev(s))).collect();
        w.append_batch(&batch).unwrap();
        w.append(8, &ev(8)).unwrap();
        let batch2: Vec<(u64, Crossing)> = (9..=12u64).map(|s| (s, ev(s))).collect();
        w.append_batch(&batch2).unwrap();
        w.sync().unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 12);
        assert!(!r.torn && !r.seq_break);
        assert_eq!(r.valid_bytes, r.file_bytes);
        for (i, &(s, c)) in r.events.iter().enumerate() {
            assert_eq!(s, i as u64 + 1);
            assert_eq!(c, ev(s));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_record_batch_is_byte_identical_to_append() {
        let dir = tmpdir("batch-one");
        let single = dir.join("single.log");
        let batched = dir.join("batched.log");
        let mut w = WalWriter::create(&single, 0).unwrap();
        w.append(1, &ev(1)).unwrap();
        w.sync().unwrap();
        let mut w = WalWriter::create(&batched, 0).unwrap();
        w.append_batch(&[(1, ev(1))]).unwrap();
        w.sync().unwrap();
        assert_eq!(std::fs::read(&single).unwrap(), std::fs::read(&batched).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_batch_frame_is_lost_as_a_unit() {
        let dir = tmpdir("batch-torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        w.append(1, &ev(1)).unwrap();
        let batch: Vec<(u64, Crossing)> = (2..=6u64).map(|s| (s, ev(s))).collect();
        w.append_batch(&batch).unwrap();
        w.sync().unwrap();
        // Cut inside the batch frame: keep the single record plus the batch
        // header and 2.5 payloads.
        let keep = RECORD_LEN + HEADER_LEN as u64 + 2 * PAYLOAD_LEN as u64 + 12;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert_eq!(r.events.len(), 1, "the torn frame must not contribute any record");
        assert_eq!(r.valid_bytes, RECORD_LEN);
        assert!(r.torn);
        assert!(!r.seq_break);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_bit_flip_drops_the_whole_frame() {
        let dir = tmpdir("batch-flip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        let batch: Vec<(u64, Crossing)> = (1..=4u64).map(|s| (s, ev(s))).collect();
        w.append_batch(&batch).unwrap();
        w.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = HEADER_LEN + 3 * PAYLOAD_LEN + 5; // last payload in the frame
        bytes[victim] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay_wal(&path, 0).unwrap();
        assert!(r.events.is_empty(), "one flipped byte poisons the frame's single CRC");
        assert!(r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn batch_sequence_jump_rejected_at_append() {
        let dir = tmpdir("batch-jump");
        let mut w = WalWriter::create(&dir.join("wal.log"), 0).unwrap();
        let _ = w.append_batch(&[(1, ev(1)), (3, ev(3))]);
    }

    #[test]
    fn durability_batch_is_durable_after_one_call() {
        let dir = tmpdir("batch-durable");
        let forms: HashMap<usize, TrackingForm> = HashMap::new();
        let mut d = ShardDurability::initialize(&dir, 0, &forms, 0, 1_000_000, 1_000_000).unwrap();
        let batch: Vec<(u64, Crossing)> = (1..=10u64).map(|s| (s, ev(s))).collect();
        let mark = d.append_batch(&batch, &forms).unwrap();
        assert_eq!(mark.durable_seq, Some(10), "group commit publishes the batch's tail");
        assert!(!mark.snapshotted);
        assert_eq!(d.unsynced_bytes(), 0, "the single sync covered the whole frame");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let dir = tmpdir("missing");
        let r = replay_wal(&dir.join("nope.log"), 9).unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.last_seq(9), 9);
        assert!(!r.torn);
        std::fs::remove_dir_all(&dir).ok();
    }
}
