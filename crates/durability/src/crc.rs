//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the checksum
//! guarding WAL records and snapshot files. Implemented here because the
//! workspace builds offline (see CONTRIBUTING.md); the table is generated at
//! first use and the result matches the ubiquitous zlib `crc32`.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, durability");
        let mut corrupted = b"hello, durability".to_vec();
        for i in 0..corrupted.len() * 8 {
            corrupted[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&corrupted), base, "bit {i} flip must change the checksum");
            corrupted[i / 8] ^= 1 << (i % 8);
        }
    }
}
