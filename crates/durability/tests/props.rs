//! Property tests for crash recovery: killing a shard at an **arbitrary
//! byte offset** of its WAL — including mid-record torn writes — and
//! replaying snapshot + WAL reproduces exactly the state an uninterrupted
//! run over the surviving event prefix would have built.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use stq_core::tracker::Crossing;
use stq_durability::{recover_shard, state_digest, ShardDurability};
use stq_forms::TrackingForm;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("stq-durprops-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A deterministic event stream: per-edge times grow strictly, so every
/// prefix is a valid monotone ingest history.
fn ev(seq: u64, edges: usize) -> Crossing {
    Crossing {
        time: seq as f64 * 0.375,
        edge: (seq.wrapping_mul(0x9E37_79B9)) as usize % edges,
        forward: seq % 2 == 1,
    }
}

fn apply(forms: &mut HashMap<usize, TrackingForm>, c: &Crossing) {
    forms
        .entry(c.edge)
        .or_insert_with(|| TrackingForm::from_sequences(vec![], vec![]))
        .record(c.forward, c.time);
}

/// Ingests events `1..=n` through a durable shard, then kills it keeping
/// `surviving_unsynced` bytes past the durable boundary. Returns the digest
/// of the uninterrupted in-memory state at each sequence (for prefix
/// comparison).
fn run_and_kill(
    root: &Path,
    n: u64,
    edges: usize,
    snapshot_every: u64,
    sync_every: u64,
    surviving_unsynced: u64,
) -> Vec<u64> {
    let mut forms: HashMap<usize, TrackingForm> = HashMap::new();
    let mut digests = vec![state_digest(&forms)]; // digests[s] = state after seq s
    let mut d =
        ShardDurability::initialize(root, 0, &forms, 0, snapshot_every, sync_every).unwrap();
    for seq in 1..=n {
        let c = ev(seq, edges);
        apply(&mut forms, &c);
        d.append(seq, &c, &forms).unwrap();
        digests.push(state_digest(&forms));
    }
    d.kill_cut(surviving_unsynced).unwrap();
    digests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for any event count, any snapshot/sync
    /// cadence, and a crash surviving any byte length of the unsynced tail
    /// (torn mid-record cuts included), recovery lands on some prefix of
    /// the event stream and its state is bit-identical to an uninterrupted
    /// run over that prefix.
    #[test]
    fn crash_at_any_offset_recovers_an_exact_prefix(
        n in 1u64..220,
        edges in 1usize..9,
        snapshot_every in 1u64..80,
        sync_every in 1u64..24,
        cut in 0u64..4_000,
    ) {
        let root = tmpdir("prefix");
        let digests = run_and_kill(&root, n, edges, snapshot_every, sync_every, cut);
        let rec = recover_shard(&root, 0, snapshot_every, sync_every).unwrap();
        let s = rec.report.recovered_seq;
        prop_assert!(s <= n, "cannot recover events that never happened");
        prop_assert_eq!(
            rec.digest(),
            digests[s as usize],
            "recovered state must equal the uninterrupted run at seq {}", s
        );
        prop_assert!(!rec.report.seq_break, "a tail cut never looks like mid-log damage");
        std::fs::remove_dir_all(&root).ok();
    }

    /// Durability floor: everything synced (or snapshotted) before the
    /// crash survives it, regardless of how little of the unsynced tail
    /// does.
    #[test]
    fn synced_events_always_survive(
        n in 1u64..200,
        snapshot_every in 2u64..60,
        sync_every in 1u64..16,
    ) {
        let root = tmpdir("floor");
        let mut forms: HashMap<usize, TrackingForm> = HashMap::new();
        let mut d =
            ShardDurability::initialize(&root, 0, &forms, 0, snapshot_every, sync_every).unwrap();
        let mut durable = 0u64;
        for seq in 1..=n {
            let c = ev(seq, 5);
            apply(&mut forms, &c);
            let mark = d.append(seq, &c, &forms).unwrap();
            if let Some(ds) = mark.durable_seq {
                durable = ds;
            }
        }
        d.kill_cut(0).unwrap(); // worst case: the whole unsynced tail is lost
        let rec = recover_shard(&root, 0, snapshot_every, sync_every).unwrap();
        prop_assert!(
            rec.report.recovered_seq >= durable,
            "recovered {} < durable floor {}", rec.report.recovered_seq, durable
        );
        std::fs::remove_dir_all(&root).ok();
    }

    /// Recovery is idempotent and resumable: recover, append more events,
    /// crash cleanly, recover again — the final state equals one
    /// uninterrupted run over the combined stream.
    #[test]
    fn recover_append_recover_composes(
        first in 1u64..120,
        more in 1u64..80,
        snapshot_every in 2u64..50,
        sync_every in 1u64..12,
        cut in 0u64..2_000,
    ) {
        let root = tmpdir("compose");
        run_and_kill(&root, first, 6, snapshot_every, sync_every, cut);
        let mut rec = recover_shard(&root, 0, snapshot_every, sync_every).unwrap();
        let base = rec.report.recovered_seq;
        // Continue the *original* stream from where the durable prefix ends,
        // as the server's redo buffer would.
        for seq in base + 1..=base + more {
            let c = ev(seq, 6);
            apply(&mut rec.forms, &c);
            rec.durability.append(seq, &c, &rec.forms).unwrap();
        }
        rec.durability.sync().unwrap();
        drop(rec);

        let rec2 = recover_shard(&root, 0, snapshot_every, sync_every).unwrap();
        prop_assert_eq!(rec2.report.recovered_seq, base + more);
        let mut oracle: HashMap<usize, TrackingForm> = HashMap::new();
        for seq in 1..=base + more {
            apply(&mut oracle, &ev(seq, 6));
        }
        prop_assert_eq!(rec2.digest(), state_digest(&oracle));
        std::fs::remove_dir_all(&root).ok();
    }
}
