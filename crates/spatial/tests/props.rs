//! Property tests: every index answers range and nearest-neighbour queries
//! identically to brute force, for arbitrary inputs including duplicates.

use proptest::prelude::*;
use stq_geom::{Point, Rect};
use stq_spatial::{GridIndex, KdTree, QuadTree};

fn entries() -> impl Strategy<Value = Vec<(Point, u32)>> {
    proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120).prop_map(|pts| {
        pts.into_iter().enumerate().map(|(i, (x, y))| (Point::new(x, y), i as u32)).collect()
    })
}

fn rect() -> impl Strategy<Value = Rect> {
    (-60.0f64..60.0, -60.0f64..60.0, -60.0f64..60.0, -60.0f64..60.0)
        .prop_map(|(x1, y1, x2, y2)| Rect::from_corners(Point::new(x1, y1), Point::new(x2, y2)))
}

fn brute_range(es: &[(Point, u32)], r: &Rect) -> Vec<u32> {
    let mut v: Vec<u32> = es.iter().filter(|(p, _)| r.contains(*p)).map(|&(_, id)| id).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kdtree_range_matches_brute(es in entries(), r in rect(), cap in 1usize..16) {
        let t = KdTree::build(&es, cap);
        let mut got: Vec<u32> = t.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_range(&es, &r));
    }

    #[test]
    fn quadtree_range_matches_brute(es in entries(), r in rect(), cap in 1usize..16) {
        let t = QuadTree::build(&es, cap);
        let mut got: Vec<u32> = t.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_range(&es, &r));
    }

    #[test]
    fn grid_range_matches_brute(es in entries(), r in rect(), nx in 1usize..12, ny in 1usize..12) {
        let g = GridIndex::build(&es, nx, ny);
        let mut got: Vec<u32> = g.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        prop_assert_eq!(got, brute_range(&es, &r));
    }

    #[test]
    fn nearest_matches_brute(es in entries(), qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let q = Point::new(qx, qy);
        let best = es.iter().map(|(p, _)| q.dist2(*p)).fold(f64::INFINITY, f64::min);
        let t = KdTree::build(&es, 4);
        let g = GridIndex::build(&es, 8, 8);
        match (t.nearest(q), g.nearest(q)) {
            (None, None) => prop_assert!(es.is_empty()),
            (Some(a), Some(b)) => {
                prop_assert!((q.dist2(a.point) - best).abs() < 1e-9);
                prop_assert!((q.dist2(b.point) - best).abs() < 1e-9);
            }
            _ => prop_assert!(false, "indexes disagree on emptiness"),
        }
    }

    #[test]
    fn knn_is_sorted_prefix_of_brute(es in entries(), k in 1usize..20,
                                     qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let q = Point::new(qx, qy);
        let t = KdTree::build(&es, 4);
        let got = t.knn(q, k);
        prop_assert_eq!(got.len(), k.min(es.len()));
        let mut dists: Vec<f64> = es.iter().map(|(p, _)| q.dist2(*p)).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (i, e) in got.iter().enumerate() {
            prop_assert!((q.dist2(e.point) - dists[i]).abs() < 1e-9, "rank {i}");
        }
    }

    #[test]
    fn leaves_partition(es in entries(), cap in 1usize..16) {
        let t = KdTree::build(&es, cap);
        let mut ids: Vec<u32> = t.leaves().into_iter().flatten().map(|e| e.id).collect();
        ids.sort_unstable();
        let mut want: Vec<u32> = es.iter().map(|&(_, id)| id).collect();
        want.sort_unstable();
        prop_assert_eq!(ids, want);

        let qt = QuadTree::build(&es, cap);
        let mut qids: Vec<u32> =
            qt.leaves().into_iter().flat_map(|(_, l)| l).map(|e| e.id).collect();
        qids.sort_unstable();
        let mut want2: Vec<u32> = es.iter().map(|&(_, id)| id).collect();
        want2.sort_unstable();
        prop_assert_eq!(qids, want2);
    }
}
