//! Static 2-d tree (kd-tree) over points with payloads.

use stq_geom::{Point, Rect};

/// An entry stored in the tree: a location plus an opaque payload id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Entry {
    /// Location of the entry.
    pub point: Point,
    /// Opaque payload id (callers map back to graph objects).
    pub id: u32,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        entries: Vec<Entry>,
    },
    Split {
        axis: u8, // 0 = x, 1 = y
        coord: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A static kd-tree built once over a point set.
///
/// The tree recursively splits on the median of the wider axis until each
/// leaf holds at most `leaf_cap` entries — matching the paper's hierarchical
/// space-partition sampling, which "recursively partition\[s\] the space until
/// the leaf level has *m* nodes" (§4.3).
#[derive(Clone, Debug)]
pub struct KdTree {
    root: Node,
    len: usize,
    bounds: Rect,
}

impl KdTree {
    /// Builds a tree with leaves holding at most `leaf_cap` entries.
    ///
    /// `leaf_cap` is clamped to at least 1. Building from an empty slice is
    /// allowed and yields an empty tree.
    pub fn build(entries: &[(Point, u32)], leaf_cap: usize) -> Self {
        let leaf_cap = leaf_cap.max(1);
        let mut items: Vec<Entry> =
            entries.iter().map(|&(point, id)| Entry { point, id }).collect();
        let bounds = Rect::bounding(&entries.iter().map(|e| e.0).collect::<Vec<_>>())
            .unwrap_or_else(Rect::empty);
        let len = items.len();
        let root = Self::build_node(&mut items, leaf_cap);
        KdTree { root, len, bounds }
    }

    fn build_node(items: &mut [Entry], leaf_cap: usize) -> Node {
        if items.len() <= leaf_cap {
            return Node::Leaf { entries: items.to_vec() };
        }
        let bb = Rect::bounding(&items.iter().map(|e| e.point).collect::<Vec<_>>()).unwrap();
        let axis: u8 = if bb.width() >= bb.height() { 0 } else { 1 };
        let mid = items.len() / 2;
        items.select_nth_unstable_by(mid, |a, b| {
            let (ka, kb) = if axis == 0 { (a.point.x, b.point.x) } else { (a.point.y, b.point.y) };
            ka.partial_cmp(&kb).unwrap()
        });
        let coord = if axis == 0 { items[mid].point.x } else { items[mid].point.y };
        let (lo, hi) = items.split_at_mut(mid);
        // Guard against all-equal keys on this axis producing an empty side.
        if lo.is_empty() || hi.is_empty() {
            return Node::Leaf { entries: items.to_vec() };
        }
        Node::Split {
            axis,
            coord,
            left: Box::new(Self::build_node(lo, leaf_cap)),
            right: Box::new(Self::build_node(hi, leaf_cap)),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of the stored points (empty rect when empty).
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// All entries inside the closed rectangle `r`.
    pub fn range(&self, r: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, r, &mut out);
        out
    }

    fn range_rec(node: &Node, r: &Rect, out: &mut Vec<Entry>) {
        match node {
            Node::Leaf { entries } => {
                out.extend(entries.iter().filter(|e| r.contains(e.point)).copied());
            }
            Node::Split { axis, coord, left, right } => {
                let (lo, hi) = if *axis == 0 { (r.min.x, r.max.x) } else { (r.min.y, r.max.y) };
                if lo < *coord {
                    Self::range_rec(left, r, out);
                }
                if hi >= *coord {
                    Self::range_rec(right, r, out);
                }
            }
        }
    }

    /// Nearest entry to `q`, or `None` when empty.
    pub fn nearest(&self, q: Point) -> Option<Entry> {
        self.knn(q, 1).into_iter().next()
    }

    /// The `k` nearest entries to `q`, closest first.
    pub fn knn(&self, q: Point, k: usize) -> Vec<Entry> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Max-heap by distance keyed as (dist2, entry).
        let mut heap: Vec<(f64, Entry)> = Vec::with_capacity(k + 1);
        Self::knn_rec(&self.root, q, k, &mut heap);
        heap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        heap.into_iter().map(|(_, e)| e).collect()
    }

    fn knn_rec(node: &Node, q: Point, k: usize, heap: &mut Vec<(f64, Entry)>) {
        match node {
            Node::Leaf { entries } => {
                for &e in entries {
                    let d = q.dist2(e.point);
                    if heap.len() < k {
                        heap.push((d, e));
                        heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap()); // worst first
                    } else if d < heap[0].0 {
                        heap[0] = (d, e);
                        heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                    }
                }
            }
            Node::Split { axis, coord, left, right } => {
                let key = if *axis == 0 { q.x } else { q.y };
                let (near, far) = if key < *coord { (left, right) } else { (right, left) };
                Self::knn_rec(near, q, k, heap);
                let plane_d = (key - coord) * (key - coord);
                if heap.len() < k || plane_d <= heap[0].0 {
                    Self::knn_rec(far, q, k, heap);
                }
            }
        }
    }

    /// Enumerates the entry groups at the leaves, in tree order.
    ///
    /// Used by the kd-tree sampling method: one representative per leaf.
    pub fn leaves(&self) -> Vec<Vec<Entry>> {
        let mut out = Vec::new();
        Self::leaves_rec(&self.root, &mut out);
        out
    }

    fn leaves_rec(node: &Node, out: &mut Vec<Vec<Entry>>) {
        match node {
            Node::Leaf { entries } => {
                if !entries.is_empty() {
                    out.push(entries.clone());
                }
            }
            Node::Split { left, right, .. } => {
                Self::leaves_rec(left, out);
                Self::leaves_rec(right, out);
            }
        }
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + rec(left).max(rec(right)),
            }
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<(Point, u32)> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|i| (Point::new(next() * 100.0, next() * 100.0), i as u32)).collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[], 4);
        assert!(t.is_empty());
        assert!(t.nearest(Point::ORIGIN).is_none());
        assert!(t.range(&Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0))).is_empty());
        assert!(t.leaves().is_empty());
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = cloud(500, 3);
        let t = KdTree::build(&pts, 8);
        let r = Rect::from_corners(Point::new(20.0, 30.0), Point::new(60.0, 70.0));
        let mut got: Vec<u32> = t.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            pts.iter().filter(|(p, _)| r.contains(*p)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(300, 9);
        let t = KdTree::build(&pts, 4);
        for qi in 0..20 {
            let q = Point::new((qi * 7 % 100) as f64, (qi * 13 % 100) as f64);
            let got = t.nearest(q).unwrap();
            let want =
                pts.iter().min_by(|a, b| q.dist2(a.0).partial_cmp(&q.dist2(b.0)).unwrap()).unwrap();
            assert!((q.dist2(got.point) - q.dist2(want.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_ordering_and_count() {
        let pts = cloud(200, 17);
        let t = KdTree::build(&pts, 4);
        let q = Point::new(50.0, 50.0);
        let got = t.knn(q, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(q.dist2(w[0].point) <= q.dist2(w[1].point));
        }
        // Compare against sorted brute force.
        let mut all = pts.clone();
        all.sort_by(|a, b| q.dist2(a.0).partial_cmp(&q.dist2(b.0)).unwrap());
        for (g, (p, _)) in got.iter().zip(all.iter()) {
            assert!((q.dist2(g.point) - q.dist2(*p)).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_k_larger_than_n() {
        let pts = cloud(5, 1);
        let t = KdTree::build(&pts, 2);
        assert_eq!(t.knn(Point::ORIGIN, 50).len(), 5);
        assert!(t.knn(Point::ORIGIN, 0).is_empty());
    }

    #[test]
    fn leaves_partition_entries() {
        let pts = cloud(300, 5);
        let t = KdTree::build(&pts, 10);
        let leaves = t.leaves();
        let total: usize = leaves.iter().map(|l| l.len()).sum();
        assert_eq!(total, 300);
        for l in &leaves {
            assert!(l.len() <= 10);
        }
        // Roughly n / leaf_cap leaves.
        assert!(leaves.len() >= 30);
    }

    #[test]
    fn duplicate_points_handled() {
        let p = Point::new(1.0, 1.0);
        let pts: Vec<(Point, u32)> = (0..50).map(|i| (p, i)).collect();
        let t = KdTree::build(&pts, 4);
        assert_eq!(t.len(), 50);
        assert_eq!(t.range(&Rect::from_corners(Point::ORIGIN, Point::new(2.0, 2.0))).len(), 50);
        assert_eq!(t.knn(Point::ORIGIN, 7).len(), 7);
    }

    #[test]
    fn depth_is_logarithmic() {
        let pts = cloud(1024, 7);
        let t = KdTree::build(&pts, 1);
        assert!(t.depth() <= 2 * 11);
    }
}
