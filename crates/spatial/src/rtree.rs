//! Static R-tree with Sort-Tile-Recursive (STR) bulk loading.
//!
//! Rounds out the classic spatial-index family the paper discusses (§2.1,
//! §2.3: R-trees, kd-trees, QuadTrees). The framework's own lookups use the
//! kd-tree/grid, but the R-tree supports *rectangles* as first-class
//! entries, which the others do not — useful for indexing face bounding
//! boxes and historical query regions.

use stq_geom::{Point, Rect};

/// An indexed rectangle with an opaque payload id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RectEntry {
    /// Indexed rectangle.
    pub rect: Rect,
    /// Opaque payload id.
    pub id: u32,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf { entries: Vec<RectEntry> },
    Internal { children: Vec<(Rect, Node)> },
}

/// A static R-tree over rectangles, STR bulk-loaded.
#[derive(Clone, Debug)]
pub struct RTree {
    root: Option<(Rect, Node)>,
    len: usize,
    fanout: usize,
}

impl RTree {
    /// Bulk-loads entries with the given fanout (clamped to ≥ 2).
    pub fn build(entries: &[(Rect, u32)], fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let items: Vec<RectEntry> =
            entries.iter().map(|&(rect, id)| RectEntry { rect, id }).collect();
        let len = items.len();
        if items.is_empty() {
            return RTree { root: None, len: 0, fanout };
        }
        let leaves = Self::str_pack_leaves(items, fanout);
        let mut level: Vec<(Rect, Node)> = leaves;
        while level.len() > 1 {
            level = Self::str_pack_internal(level, fanout);
        }
        let root = level.pop();
        RTree { root, len, fanout }
    }

    fn mbr_of(entries: &[RectEntry]) -> Rect {
        entries.iter().fold(Rect::empty(), |acc, e| acc.union(&e.rect))
    }

    /// STR: sort by centre x, slice into √-tiles, sort tiles by centre y,
    /// chunk into leaves.
    fn str_pack_leaves(mut items: Vec<RectEntry>, fanout: usize) -> Vec<(Rect, Node)> {
        let n = items.len();
        let leaf_count = n.div_ceil(fanout);
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slices.max(1));
        items.sort_by(|a, b| a.rect.center().x.partial_cmp(&b.rect.center().x).unwrap());
        let mut out = Vec::with_capacity(leaf_count);
        for slice in items.chunks(slice_size.max(1)) {
            let mut slice = slice.to_vec();
            slice.sort_by(|a, b| a.rect.center().y.partial_cmp(&b.rect.center().y).unwrap());
            for chunk in slice.chunks(fanout) {
                let entries = chunk.to_vec();
                out.push((Self::mbr_of(&entries), Node::Leaf { entries }));
            }
        }
        out
    }

    fn str_pack_internal(mut nodes: Vec<(Rect, Node)>, fanout: usize) -> Vec<(Rect, Node)> {
        let n = nodes.len();
        let parent_count = n.div_ceil(fanout);
        let slices = (parent_count as f64).sqrt().ceil() as usize;
        let slice_size = n.div_ceil(slices.max(1));
        nodes.sort_by(|a, b| a.0.center().x.partial_cmp(&b.0.center().x).unwrap());
        let mut out = Vec::with_capacity(parent_count);
        let mut idx = 0;
        while idx < nodes.len() {
            let end = (idx + slice_size).min(nodes.len());
            let mut slice: Vec<(Rect, Node)> = nodes[idx..end].to_vec();
            slice.sort_by(|a, b| a.0.center().y.partial_cmp(&b.0.center().y).unwrap());
            for chunk in slice.chunks(fanout) {
                let mbr = chunk.iter().fold(Rect::empty(), |acc, (r, _)| acc.union(r));
                out.push((mbr, Node::Internal { children: chunk.to_vec() }));
            }
            idx = end;
        }
        out
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Root bounding box, if any entries exist.
    pub fn bounds(&self) -> Option<Rect> {
        self.root.as_ref().map(|(r, _)| *r)
    }

    /// All entries whose rectangle intersects `query`.
    pub fn intersecting(&self, query: &Rect) -> Vec<RectEntry> {
        let mut out = Vec::new();
        if let Some((mbr, node)) = &self.root {
            if mbr.intersects(query) {
                Self::search(node, query, &mut out, &mut |e, q| e.rect.intersects(q));
            }
        }
        out
    }

    /// All entries whose rectangle is fully contained in `query`.
    pub fn contained_in(&self, query: &Rect) -> Vec<RectEntry> {
        let mut out = Vec::new();
        if let Some((mbr, node)) = &self.root {
            if mbr.intersects(query) {
                Self::search(node, query, &mut out, &mut |e, q| q.contains_rect(&e.rect));
            }
        }
        out
    }

    /// All entries whose rectangle contains the point `p`.
    pub fn containing_point(&self, p: Point) -> Vec<RectEntry> {
        let q = Rect::from_corners(p, p);
        self.intersecting(&q).into_iter().filter(|e| e.rect.contains(p)).collect()
    }

    fn search(
        node: &Node,
        query: &Rect,
        out: &mut Vec<RectEntry>,
        accept: &mut impl FnMut(&RectEntry, &Rect) -> bool,
    ) {
        match node {
            Node::Leaf { entries } => {
                out.extend(entries.iter().filter(|e| accept(e, query)).copied());
            }
            Node::Internal { children } => {
                for (mbr, child) in children {
                    if mbr.intersects(query) {
                        Self::search(child, query, out, accept);
                    }
                }
            }
        }
    }

    /// Tree height (1 = single leaf level).
    pub fn height(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => {
                    1 + children.iter().map(|(_, c)| rec(c)).max().unwrap_or(0)
                }
            }
        }
        self.root.as_ref().map(|(_, n)| rec(n)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(n: usize, seed: u64) -> Vec<(Rect, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                let w = next() * 5.0;
                let h = next() * 5.0;
                (Rect::from_corners(Point::new(x, y), Point::new(x + w, y + h)), i as u32)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(&[], 8);
        assert!(t.is_empty());
        assert!(t.bounds().is_none());
        assert!(t
            .intersecting(&Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0)))
            .is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn intersecting_matches_brute_force() {
        let bs = boxes(300, 7);
        let t = RTree::build(&bs, 8);
        let q = Rect::from_corners(Point::new(20.0, 30.0), Point::new(60.0, 70.0));
        let mut got: Vec<u32> = t.intersecting(&q).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            bs.iter().filter(|(r, _)| r.intersects(&q)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!want.is_empty());
    }

    #[test]
    fn containment_matches_brute_force() {
        let bs = boxes(300, 9);
        let t = RTree::build(&bs, 6);
        let q = Rect::from_corners(Point::new(10.0, 10.0), Point::new(80.0, 80.0));
        let mut got: Vec<u32> = t.contained_in(&q).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            bs.iter().filter(|(r, _)| q.contains_rect(r)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn point_stabbing() {
        let bs = boxes(200, 3);
        let t = RTree::build(&bs, 8);
        let p = Point::new(50.0, 50.0);
        let mut got: Vec<u32> = t.containing_point(p).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            bs.iter().filter(|(r, _)| r.contains(p)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn height_is_logarithmic() {
        let bs = boxes(1000, 11);
        let t = RTree::build(&bs, 10);
        // ceil(log10(1000/10)) + 1 = 3 levels.
        assert!(t.height() <= 4, "height {}", t.height());
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn bounds_cover_everything() {
        let bs = boxes(100, 13);
        let t = RTree::build(&bs, 4);
        let b = t.bounds().unwrap();
        for (r, _) in &bs {
            assert!(b.contains_rect(r));
        }
    }

    #[test]
    fn single_entry() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0));
        let t = RTree::build(&[(r, 42)], 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        assert_eq!(t.intersecting(&r)[0].id, 42);
    }

    #[test]
    fn degenerate_rects_as_points() {
        let pts: Vec<(Rect, u32)> = (0..50)
            .map(|i| {
                let p = Point::new(i as f64, (i * 7 % 13) as f64);
                (Rect::from_corners(p, p), i as u32)
            })
            .collect();
        let t = RTree::build(&pts, 5);
        let q = Rect::from_corners(Point::new(10.0, -1.0), Point::new(20.0, 14.0));
        let got = t.intersecting(&q);
        let want = pts.iter().filter(|(r, _)| r.intersects(&q)).count();
        assert_eq!(got.len(), want);
    }
}
