//! # stq-spatial
//!
//! Hierarchical and flat spatial indexes built from scratch:
//!
//! - [`KdTree`] — a static 2-d tree supporting nearest-neighbour, k-NN and
//!   rectangle range queries, plus *leaf enumeration* (the paper samples one
//!   node per kd-tree leaf, §4.3),
//! - [`QuadTree`] — a region quadtree with the same query and leaf-sampling
//!   surface,
//! - [`GridIndex`] — a uniform bucket grid used for fast point location and
//!   map matching,
//! - [`RTree`] — a static STR-packed R-tree over rectangles (face bounding
//!   boxes, historical query regions).
//!
//! All indexes store `(Point, u32)` pairs: the payload is an opaque id the
//! callers map back to graph vertices.

pub mod grid;
pub mod kdtree;
pub mod quadtree;
pub mod rtree;

pub use grid::GridIndex;
pub use kdtree::KdTree;
pub use quadtree::QuadTree;
pub use rtree::RTree;
