//! Region quadtree over points with payloads.

use crate::kdtree::Entry;
use stq_geom::{Point, Rect};

#[derive(Clone, Debug)]
enum Node {
    Leaf { entries: Vec<Entry> },
    Internal { children: Box<[Node; 4]> },
}

/// A region quadtree: the bounding square is recursively split into four
/// quadrants until each leaf holds at most `leaf_cap` entries (or the maximum
/// depth is reached, which bounds pathological duplicate-heavy inputs).
///
/// Supports rectangle range queries and leaf enumeration — the QuadTree
/// sampling method of the paper (§4.3) draws one representative per leaf.
#[derive(Clone, Debug)]
pub struct QuadTree {
    root: Node,
    region: Rect,
    len: usize,
}

const MAX_DEPTH: usize = 32;

impl QuadTree {
    /// Builds a quadtree with at most `leaf_cap` entries per leaf.
    pub fn build(entries: &[(Point, u32)], leaf_cap: usize) -> Self {
        let leaf_cap = leaf_cap.max(1);
        let items: Vec<Entry> = entries.iter().map(|&(point, id)| Entry { point, id }).collect();
        let pts: Vec<Point> = entries.iter().map(|e| e.0).collect();
        // Square region so quadrants stay square.
        let region = match Rect::bounding(&pts) {
            Some(bb) => {
                let side = bb.width().max(bb.height()).max(1e-9);
                Rect::from_corners(bb.min, bb.min + Point::new(side, side)).inflated(side * 1e-9)
            }
            None => Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0)),
        };
        let len = items.len();
        let root = Self::build_node(items, region, leaf_cap, 0);
        QuadTree { root, region, len }
    }

    fn quadrants(r: &Rect) -> [Rect; 4] {
        let c = r.center();
        [
            Rect::from_corners(r.min, c),
            Rect::from_corners(Point::new(c.x, r.min.y), Point::new(r.max.x, c.y)),
            Rect::from_corners(Point::new(r.min.x, c.y), Point::new(c.x, r.max.y)),
            Rect::from_corners(c, r.max),
        ]
    }

    fn quadrant_of(r: &Rect, p: Point) -> usize {
        let c = r.center();
        match (p.x >= c.x, p.y >= c.y) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        }
    }

    fn build_node(items: Vec<Entry>, region: Rect, leaf_cap: usize, depth: usize) -> Node {
        if items.len() <= leaf_cap || depth >= MAX_DEPTH {
            return Node::Leaf { entries: items };
        }
        let mut buckets: [Vec<Entry>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for e in items {
            buckets[Self::quadrant_of(&region, e.point)].push(e);
        }
        let quads = Self::quadrants(&region);
        let [b0, b1, b2, b3] = buckets;
        let children = Box::new([
            Self::build_node(b0, quads[0], leaf_cap, depth + 1),
            Self::build_node(b1, quads[1], leaf_cap, depth + 1),
            Self::build_node(b2, quads[2], leaf_cap, depth + 1),
            Self::build_node(b3, quads[3], leaf_cap, depth + 1),
        ]);
        Node::Internal { children }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The (square) region covered by the root.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// All entries inside the closed rectangle `r`.
    pub fn range(&self, r: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, &self.region, r, &mut out);
        out
    }

    fn range_rec(node: &Node, region: &Rect, r: &Rect, out: &mut Vec<Entry>) {
        if !region.intersects(r) {
            return;
        }
        match node {
            Node::Leaf { entries } => {
                out.extend(entries.iter().filter(|e| r.contains(e.point)).copied());
            }
            Node::Internal { children } => {
                for (child, quad) in children.iter().zip(Self::quadrants(region)) {
                    Self::range_rec(child, &quad, r, out);
                }
            }
        }
    }

    /// Enumerates non-empty leaves along with their regions.
    pub fn leaves(&self) -> Vec<(Rect, Vec<Entry>)> {
        let mut out = Vec::new();
        Self::leaves_rec(&self.root, &self.region, &mut out);
        out
    }

    fn leaves_rec(node: &Node, region: &Rect, out: &mut Vec<(Rect, Vec<Entry>)>) {
        match node {
            Node::Leaf { entries } => {
                if !entries.is_empty() {
                    out.push((*region, entries.clone()));
                }
            }
            Node::Internal { children } => {
                for (child, quad) in children.iter().zip(Self::quadrants(region)) {
                    Self::leaves_rec(child, &quad, out);
                }
            }
        }
    }

    /// Tree depth (1 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Internal { children } => 1 + children.iter().map(rec).max().unwrap(),
            }
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<(Point, u32)> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|i| (Point::new(next() * 100.0, next() * 100.0), i as u32)).collect()
    }

    #[test]
    fn empty_tree() {
        let t = QuadTree::build(&[], 4);
        assert!(t.is_empty());
        assert!(t.range(&Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0))).is_empty());
        assert!(t.leaves().is_empty());
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = cloud(400, 21);
        let t = QuadTree::build(&pts, 6);
        let r = Rect::from_corners(Point::new(10.0, 25.0), Point::new(55.0, 90.0));
        let mut got: Vec<u32> = t.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            pts.iter().filter(|(p, _)| r.contains(*p)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn leaves_partition_entries_and_regions_disjoint() {
        let pts = cloud(256, 8);
        let t = QuadTree::build(&pts, 8);
        let leaves = t.leaves();
        let total: usize = leaves.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 256);
        for (region, entries) in &leaves {
            assert!(entries.len() <= 8);
            for e in entries {
                assert!(region.inflated(1e-9).contains(e.point));
            }
        }
    }

    #[test]
    fn duplicate_points_bounded_depth() {
        let p = Point::new(5.0, 5.0);
        let pts: Vec<(Point, u32)> = (0..100).map(|i| (p, i)).collect();
        let t = QuadTree::build(&pts, 2);
        assert!(t.depth() <= MAX_DEPTH + 1);
        assert_eq!(t.range(&Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0))).len(), 100);
    }

    #[test]
    fn single_point() {
        let t = QuadTree::build(&[(Point::new(3.0, 4.0), 7)], 4);
        assert_eq!(t.len(), 1);
        let got = t.range(&Rect::from_corners(Point::new(2.0, 3.0), Point::new(4.0, 5.0)));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, 7);
    }

    #[test]
    fn region_is_square() {
        let pts = vec![(Point::new(0.0, 0.0), 0), (Point::new(10.0, 2.0), 1)];
        let t = QuadTree::build(&pts, 1);
        let r = t.region();
        assert!((r.width() - r.height()).abs() < 1e-6);
        for (p, _) in &pts {
            assert!(r.contains(*p));
        }
    }
}
