//! Uniform bucket-grid index.
//!
//! Used for constant-time-ish point location and nearest-neighbour lookup in
//! map matching (paper §5.1.3) and for the *systematic sampling* virtual grid
//! (§4.3).

use crate::kdtree::Entry;
use stq_geom::{Point, Rect};

/// A uniform grid of buckets over a rectangle.
#[derive(Clone, Debug)]
pub struct GridIndex {
    region: Rect,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<Entry>>,
    len: usize,
}

impl GridIndex {
    /// Builds a grid with `nx × ny` cells covering the bounding box of the
    /// input (slightly inflated so boundary points land inside).
    pub fn build(entries: &[(Point, u32)], nx: usize, ny: usize) -> Self {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let pts: Vec<Point> = entries.iter().map(|e| e.0).collect();
        let region = Rect::bounding(&pts)
            .map(|r| r.inflated((r.width().max(r.height()).max(1.0)) * 1e-9))
            .unwrap_or_else(|| Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0)));
        let mut g = GridIndex { region, nx, ny, cells: vec![Vec::new(); nx * ny], len: 0 };
        for &(p, id) in entries {
            let c = g.cell_of(p);
            g.cells[c].push(Entry { point: p, id });
            g.len += 1;
        }
        g
    }

    /// Builds a grid over an explicit region.
    pub fn with_region(entries: &[(Point, u32)], region: Rect, nx: usize, ny: usize) -> Self {
        let nx = nx.max(1);
        let ny = ny.max(1);
        let mut g = GridIndex { region, nx, ny, cells: vec![Vec::new(); nx * ny], len: 0 };
        for &(p, id) in entries {
            if region.contains(p) {
                let c = g.cell_of(p);
                g.cells[c].push(Entry { point: p, id });
                g.len += 1;
            }
        }
        g
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The region covered.
    pub fn region(&self) -> Rect {
        self.region
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let fx = ((p.x - self.region.min.x) / self.region.width().max(1e-300)).clamp(0.0, 1.0);
        let fy = ((p.y - self.region.min.y) / self.region.height().max(1e-300)).clamp(0.0, 1.0);
        let ix = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let iy = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        (ix, iy)
    }

    fn cell_of(&self, p: Point) -> usize {
        let (ix, iy) = self.cell_coords(p);
        iy * self.nx + ix
    }

    /// The entries in the cell containing `p`.
    pub fn cell_entries(&self, p: Point) -> &[Entry] {
        &self.cells[self.cell_of(p)]
    }

    /// Iterates over all cells as `(cell_rect, entries)`.
    pub fn cells(&self) -> impl Iterator<Item = (Rect, &[Entry])> + '_ {
        let w = self.region.width() / self.nx as f64;
        let h = self.region.height() / self.ny as f64;
        (0..self.nx * self.ny).map(move |i| {
            let ix = i % self.nx;
            let iy = i / self.nx;
            let min =
                Point::new(self.region.min.x + ix as f64 * w, self.region.min.y + iy as f64 * h);
            let r = Rect::from_corners(min, min + Point::new(w, h));
            (r, self.cells[i].as_slice())
        })
    }

    /// All entries inside the closed rectangle `r`.
    pub fn range(&self, r: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        if !self.region.intersects(r) {
            return out;
        }
        let (ix0, iy0) = self.cell_coords(Point::new(
            r.min.x.max(self.region.min.x),
            r.min.y.max(self.region.min.y),
        ));
        let (ix1, iy1) = self.cell_coords(Point::new(
            r.max.x.min(self.region.max.x),
            r.max.y.min(self.region.max.y),
        ));
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                for e in &self.cells[iy * self.nx + ix] {
                    if r.contains(e.point) {
                        out.push(*e);
                    }
                }
            }
        }
        out
    }

    /// Nearest entry to `q`, searching rings of cells outward. `None` when
    /// the index is empty.
    pub fn nearest(&self, q: Point) -> Option<Entry> {
        if self.len == 0 {
            return None;
        }
        let (cx, cy) = self.cell_coords(q);
        let max_ring = self.nx.max(self.ny);
        let mut best: Option<(f64, Entry)> = None;
        for ring in 0..=max_ring {
            // Scan the ring of cells at Chebyshev distance `ring`.
            let x0 = cx.saturating_sub(ring);
            let x1 = (cx + ring).min(self.nx - 1);
            let y0 = cy.saturating_sub(ring);
            let y1 = (cy + ring).min(self.ny - 1);
            for iy in y0..=y1 {
                for ix in x0..=x1 {
                    let on_ring = ix == x0 || ix == x1 || iy == y0 || iy == y1;
                    if ring > 0 && !on_ring {
                        continue;
                    }
                    for e in &self.cells[iy * self.nx + ix] {
                        let d = q.dist2(e.point);
                        if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                            best = Some((d, *e));
                        }
                    }
                }
            }
            // Once something is found, one extra ring guarantees correctness
            // (a closer point can hide one ring further at most when the
            // query sits near a cell border).
            if let Some((bd, _)) = best {
                let cell_w = self.region.width() / self.nx as f64;
                let cell_h = self.region.height() / self.ny as f64;
                let safe = (ring as f64) * cell_w.min(cell_h);
                if bd.sqrt() <= safe {
                    break;
                }
            }
        }
        best.map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, seed: u64) -> Vec<(Point, u32)> {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|i| (Point::new(next() * 100.0, next() * 100.0), i as u32)).collect()
    }

    #[test]
    fn empty_grid() {
        let g = GridIndex::build(&[], 4, 4);
        assert!(g.is_empty());
        assert!(g.nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = cloud(500, 31);
        let g = GridIndex::build(&pts, 10, 10);
        let r = Rect::from_corners(Point::new(5.0, 5.0), Point::new(42.0, 77.0));
        let mut got: Vec<u32> = g.range(&r).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            pts.iter().filter(|(p, _)| r.contains(*p)).map(|&(_, id)| id).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = cloud(300, 41);
        let g = GridIndex::build(&pts, 8, 8);
        for qi in 0..25 {
            let q = Point::new((qi * 17 % 110) as f64 - 5.0, (qi * 29 % 110) as f64 - 5.0);
            let got = g.nearest(q).unwrap();
            let want =
                pts.iter().min_by(|a, b| q.dist2(a.0).partial_cmp(&q.dist2(b.0)).unwrap()).unwrap();
            assert!(
                (q.dist2(got.point) - q.dist2(want.0)).abs() < 1e-9,
                "query {q}: got {} want {}",
                got.point,
                want.0
            );
        }
    }

    #[test]
    fn cells_cover_all_entries() {
        let pts = cloud(200, 51);
        let g = GridIndex::build(&pts, 5, 7);
        let total: usize = g.cells().map(|(_, es)| es.len()).sum();
        assert_eq!(total, 200);
        assert_eq!(g.cells().count(), 35);
        for (rect, es) in g.cells() {
            for e in es {
                assert!(rect.inflated(1e-6).contains(e.point));
            }
        }
    }

    #[test]
    fn with_region_filters_outside() {
        let pts =
            vec![(Point::new(0.5, 0.5), 0), (Point::new(5.0, 5.0), 1), (Point::new(0.2, 0.9), 2)];
        let g = GridIndex::with_region(
            &pts,
            Rect::from_corners(Point::ORIGIN, Point::new(1.0, 1.0)),
            2,
            2,
        );
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn single_cell_grid() {
        let pts = cloud(50, 61);
        let g = GridIndex::build(&pts, 1, 1);
        assert_eq!(g.cell_entries(Point::new(50.0, 50.0)).len(), 50);
        assert!(g.nearest(Point::new(-100.0, -100.0)).is_some());
    }
}
