//! Differential properties of the query engine: plan/execute — batched,
//! cached, or columnar — is bit-identical to the scalar `answer` path, on
//! clean and quarantined deployments.
//!
//! `engine_equivalence_suite` is the CI entry point: `STQ_EQUIV_SEED`
//! re-keys the whole scenario, so a matrix over seeds exercises different
//! cities, workloads and deployments against the same assertions.

use proptest::prelude::*;
use stq_core::prelude::*;
use stq_forms::ColumnarCounts;

/// A small random scenario (kept tiny: each case builds a whole city).
fn small_scenario() -> impl Strategy<Value = Scenario> {
    (60usize..140, 0u64..200, 2usize..8).prop_map(|(junctions, seed, objs)| {
        Scenario::build(ScenarioConfig {
            junctions,
            mix: WorkloadMix { random_waypoint: objs, commuter: objs, transit: objs / 2 },
            trajectory: TrajectoryConfig {
                speed: 8.0,
                pause: 30.0,
                duration: 1_500.0,
                exit_probability: 0.2,
            },
            seed,
            ..Default::default()
        })
    })
}

fn deployment(s: &Scenario, frac: f64, seed: u64) -> SampledGraph {
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * frac) as usize).max(3);
    let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, seed);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation)
}

/// Demotes every `stride`-th monitored edge — the shape quarantine leaves
/// behind after an integrity audit.
fn quarantined(s: &Scenario, g: &SampledGraph, stride: usize) -> SampledGraph {
    let dead: Vec<usize> = g
        .monitored()
        .iter()
        .enumerate()
        .filter(|&(_, &on)| on)
        .map(|(e, _)| e)
        .step_by(stride)
        .collect();
    g.demote_edges(&s.sensing, &dead)
}

/// Bitwise outcome equality: the value compares by f64 bit pattern, the
/// accounting exactly.
fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{ctx}: value {} vs {}", a.value, b.value);
    assert_eq!(a.miss, b.miss, "{ctx}: miss");
    assert_eq!(a.nodes_accessed, b.nodes_accessed, "{ctx}: nodes");
    assert_eq!(a.edges_accessed, b.edges_accessed, "{ctx}: edges");
    assert_eq!(a.covered_cells, b.covered_cells, "{ctx}: cells");
}

fn three_kinds(t0: f64, t1: f64) -> [QueryKind; 3] {
    [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1), QueryKind::Static(t0, t1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine-batched answers are bit-identical to the scalar path for all
    /// three query kinds, both resolutions, on clean AND quarantined
    /// graphs — against the exact store and its columnar arena.
    #[test]
    fn batched_equals_scalar_on_clean_and_quarantined(s in small_scenario(),
                                                      frac in 0.1f64..0.5,
                                                      seed in 0u64..100,
                                                      stride in 2usize..6) {
        let g = deployment(&s, frac, seed);
        let gq = quarantined(&s, &g, stride);
        let col = ColumnarCounts::from_store(&s.tracked.store);
        for graph in [&g, &gq] {
            let engine = QueryEngine::new(64);
            let mut batch = Vec::new();
            let mut scalar = Vec::new();
            for (q, t0, t1) in s.make_queries(3, 0.15, 300.0, seed ^ 0x99) {
                for kind in three_kinds(t0, t1) {
                    for approx in [Approximation::Lower, Approximation::Upper] {
                        scalar.push(answer(&s.sensing, graph, &s.tracked.store, &q, kind, approx));
                        let (plan, _) = engine.plan(&s.sensing, graph, &q, approx);
                        batch.push((plan, kind));
                    }
                }
            }
            let batched = engine.execute_batch(&s.tracked.store, &batch);
            let columnar = engine.execute_batch(&col, &batch);
            for (i, expect) in scalar.iter().enumerate() {
                assert_outcomes_identical(&batched[i], expect, "batched vs scalar");
                assert_outcomes_identical(&columnar[i], expect, "columnar vs scalar");
            }
        }
    }

    /// A plan-cache hit returns byte-identical outcomes, before AND after a
    /// quarantine-driven invalidation forces a recompile.
    #[test]
    fn cache_hit_outcomes_survive_invalidation(s in small_scenario(),
                                               frac in 0.1f64..0.5,
                                               seed in 0u64..100) {
        let g = deployment(&s, frac, seed);
        let (q, t0, t1) = s.make_queries(1, 0.15, 300.0, seed ^ 0x31).remove(0);
        for kind in three_kinds(t0, t1) {
            // Fresh engine per kind: plans are kind-independent, so a shared
            // cache would make every later first lookup a hit.
            let engine = QueryEngine::new(32);
            let (p1, h1) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
            prop_assert!(!h1, "first plan must compile");
            let cold = p1.execute(&s.tracked.store, kind);
            let (p2, h2) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
            prop_assert!(h2, "second plan must hit the cache");
            assert_outcomes_identical(&p2.execute(&s.tracked.store, kind), &cold, "cache hit");

            // Quarantine invalidates; the recompiled plan answers the same.
            engine.invalidate();
            let (p3, h3) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
            prop_assert!(!h3, "invalidation must force a recompile");
            assert_outcomes_identical(
                &p3.execute(&s.tracked.store, kind),
                &cold,
                "post-invalidation",
            );
            let st = engine.stats();
            prop_assert_eq!((st.invalidations, st.hits, st.misses), (1, 1, 2));
        }
    }
}

/// The CI engine-equivalence job's entry point: one deterministic
/// scenario per `STQ_EQUIV_SEED`, differential over 3 kinds × 2
/// resolutions × clean/quarantined graphs × cold/warm cache.
#[test]
fn engine_equivalence_suite() {
    let seed: u64 = std::env::var("STQ_EQUIV_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(11);
    let s = Scenario::build(ScenarioConfig {
        junctions: 240,
        mix: WorkloadMix { random_waypoint: 12, commuter: 8, transit: 6 },
        trajectory: TrajectoryConfig {
            speed: 10.0,
            pause: 30.0,
            duration: 3_000.0,
            exit_probability: 0.15,
        },
        seed,
        ..Default::default()
    });
    let g = deployment(&s, 0.25, seed ^ 0xce);
    let gq = quarantined(&s, &g, 3);
    let col = ColumnarCounts::from_store(&s.tracked.store);
    let queries = s.make_queries(10, 0.1, 1_000.0, seed ^ 0x40);
    assert!(!queries.is_empty());
    for graph in [&g, &gq] {
        let engine = QueryEngine::new(128);
        // Two passes: the first compiles every plan, the second must be
        // served entirely from the cache — both bit-identical to scalar.
        for pass in 0..2 {
            let mut batch = Vec::new();
            let mut scalar = Vec::new();
            let mut hits = 0usize;
            for (q, t0, t1) in &queries {
                for kind in three_kinds(*t0, *t1) {
                    for approx in [Approximation::Lower, Approximation::Upper] {
                        scalar.push(answer(&s.sensing, graph, &s.tracked.store, q, kind, approx));
                        let (plan, hit) = engine.plan(&s.sensing, graph, q, approx);
                        hits += usize::from(hit);
                        batch.push((plan, kind));
                    }
                }
            }
            if pass == 1 {
                assert_eq!(hits, batch.len(), "warm pass must be all cache hits");
            }
            let batched = engine.execute_batch(&s.tracked.store, &batch);
            let columnar = engine.execute_batch(&col, &batch);
            for (i, expect) in scalar.iter().enumerate() {
                assert_outcomes_identical(&batched[i], expect, "suite: batched vs scalar");
                assert_outcomes_identical(&columnar[i], expect, "suite: columnar vs scalar");
            }
        }
    }
}
