//! Framework-level property tests: on randomly generated cities, workloads
//! and deployments, the paper's structural guarantees hold.

use std::collections::HashSet;

use proptest::prelude::*;
use stq_core::prelude::*;
use stq_forms::snapshot_count;
use stq_geom::Rect;

/// A small random scenario (kept tiny: each case builds a whole city).
fn small_scenario() -> impl Strategy<Value = Scenario> {
    (60usize..140, 0u64..200, 2usize..8).prop_map(|(junctions, seed, objs)| {
        Scenario::build(ScenarioConfig {
            junctions,
            mix: WorkloadMix { random_waypoint: objs, commuter: objs, transit: objs / 2 },
            trajectory: TrajectoryConfig {
                speed: 8.0,
                pause: 30.0,
                duration: 1_500.0,
                exit_probability: 0.2,
            },
            seed,
            ..Default::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactness on the unsampled graph for arbitrary rectangles and times.
    #[test]
    fn unsampled_snapshot_is_exact(s in small_scenario(),
                                   fx in 0.0f64..0.6, fy in 0.0f64..0.6,
                                   w in 0.2f64..0.4, t_frac in 0.05f64..0.95) {
        let bb = s.sensing.road().bbox();
        let rect = Rect::from_corners(
            bb.min.lerp(bb.max, fx),
            bb.min.lerp(bb.max, (fx + w).min(1.0)).midpoint(bb.min.lerp(bb.max, (fy + w).min(1.0))),
        );
        let q = QueryRegion::from_rect(&s.sensing, rect);
        if q.is_empty() { return Ok(()); }
        let t = 1_500.0 * t_frac;
        let boundary = s.sensing.boundary_of(&q.junctions, None);
        let formed = snapshot_count(&s.tracked.store, &boundary, t);
        let truth = s.tracked.oracle.snapshot_count(&|j| q.junctions.contains(&j), t) as f64;
        prop_assert_eq!(formed, truth);
    }

    /// Lower/upper bracket the truth on random sampled deployments.
    #[test]
    fn bounds_bracket_for_random_deployments(s in small_scenario(),
                                             frac in 0.05f64..0.6,
                                             seed in 0u64..100,
                                             knn in proptest::option::of(2usize..7)) {
        let cands = s.sensing.sensor_candidates();
        let m = ((cands.len() as f64 * frac) as usize).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, m, seed);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let conn = match knn {
            Some(k) => Connectivity::Knn(k),
            None => Connectivity::Triangulation,
        };
        let g = SampledGraph::from_sensors(&s.sensing, &faces, conn);

        let (q, t0, _) = s.make_queries(1, 0.15, 300.0, seed ^ 0x77).remove(0);
        let kind = QueryKind::Snapshot(t0);
        let truth = ground_truth(&s.sensing, &s.tracked.store, &q, kind);
        let lo = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Lower);
        let hi = answer(&s.sensing, &g, &s.tracked.store, &q, kind, Approximation::Upper);
        if !lo.miss {
            prop_assert!(lo.value <= truth + 1e-9, "lower {} > truth {truth}", lo.value);
        }
        if !hi.miss {
            prop_assert!(hi.value + 1e-9 >= truth, "upper {} < truth {truth}", hi.value);
        }
    }

    /// Structural duality invariants of every sampled deployment.
    #[test]
    fn sampled_graph_invariants(s in small_scenario(), frac in 0.05f64..0.7, seed in 0u64..100) {
        let cands = s.sensing.sensor_candidates();
        let m = ((cands.len() as f64 * frac) as usize).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, seed);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);

        let emb = s.sensing.road().embedding();
        // Unmonitored edges never straddle components; component boundaries
        // are fully monitored.
        for (e, &(u, v)) in emb.edges().iter().enumerate() {
            if !g.monitored()[e] {
                prop_assert_eq!(g.component_of(u), g.component_of(v));
            }
        }
        for comp in g.components().iter().take(20) {
            let set: HashSet<usize> = comp.iter().copied().collect();
            for be in s.sensing.boundary_of(&set, None) {
                prop_assert!(g.monitored()[be.edge]);
            }
        }
        // Components partition all junctions + v_ext.
        let total: usize = g.components().iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, emb.num_vertices());
    }

    /// Streaming ingestion with bounded skew reproduces batch counts
    /// exactly when fed into an exact store.
    #[test]
    fn streaming_equals_batch(s in small_scenario(), skew in 1.0f64..50.0, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut events: Vec<Crossing> = s
            .trajectories
            .iter()
            .flat_map(|t| crossings_of(&s.sensing, t))
            .collect();
        // Jitter arrival order within the skew bound.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut arrivals: Vec<(f64, Crossing)> =
            events.iter().map(|&c| (c.time + rng.gen_range(0.0..skew * 0.99), c)).collect();
        arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let mut tracker = StreamTracker::new(skew);
        let mut store = stq_forms::FormStore::new(s.sensing.num_edges());
        let mut released = Vec::new();
        for (_, ev) in arrivals {
            released.extend(tracker.offer(ev).expect("within skew bound"));
        }
        released.extend(tracker.finish());
        prop_assert_eq!(released.len(), events.len());
        for ev in released {
            store.record(ev.edge, ev.forward, ev.time);
        }

        // Same counts as the batch-built store, everywhere.
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());
        let t_probe = 750.0;
        for e in (0..s.sensing.num_edges()).step_by(7) {
            prop_assert_eq!(
                store.form(e).count_until(true, t_probe),
                s.tracked.store.form(e).count_until(true, t_probe)
            );
        }
    }
}

use stq_net::{SensorFault, SensorFaultKind, SensorFaultPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness of quarantine-and-repair under random fail-stop deaths:
    /// after demoting everything untrusted — the (heartbeat-known) dead
    /// edges, whatever the audit still flags, and any edge the repair pass
    /// rewrote — every remaining monitored log is byte-identical to a
    /// clean ingestion, so `answer_with_bounds` must bracket the oracle on
    /// all three query kinds.
    #[test]
    fn repair_bounds_bracket_oracle_under_dead_sensors(s in small_scenario(),
                                                       stride in 2usize..6,
                                                       seed in 0u64..100) {
        let cands = s.sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, m, seed);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);

        let dead: Vec<usize> = g.monitored().iter().enumerate()
            .filter(|&(_, &on)| on).map(|(e, _)| e)
            .step_by(stride)
            .collect();
        let plan = SensorFaultPlan::from_faults(seed, dead.iter().map(|&edge| SensorFault {
            edge,
            kind: SensorFaultKind::Dead,
            from: f64::NEG_INFINITY,
            until: f64::INFINITY,
        }).collect());
        let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);
        let out = quarantine_and_repair(&s.sensing, &g, &mut tracked.store,
                                        (0.0, 1_500.0), &RepairConfig::default());
        let untrusted: Vec<usize> = dead.iter().copied()
            .chain(out.repaired.iter().map(|r| r.edge))
            .collect();
        let graph = out.graph.demote_edges(&s.sensing, &untrusted);

        let (q, t0, t1) = s.make_queries(1, 0.2, 400.0, seed ^ 0x5d).remove(0);
        let inside = |j: usize| q.junctions.contains(&j);
        for kind in [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1),
                     QueryKind::Static(t0, t1)] {
            let b = answer_with_bounds(&s.sensing, &graph, &tracked.store, &q, kind);
            let truth = match kind {
                QueryKind::Snapshot(t) => tracked.oracle.snapshot_count(&inside, t) as f64,
                QueryKind::Transient(a, z) => tracked.oracle.transient_count(&inside, a, z) as f64,
                QueryKind::Static(a, z) =>
                    tracked.oracle.static_interval_count(&inside, a, z) as f64,
            };
            prop_assert!(b.contains(truth),
                "{kind:?}: oracle {truth} outside [{}, {}] (miss {})",
                b.lower, b.upper, b.miss);
            prop_assert!((0.0..=1.0).contains(&b.coverage));
        }
    }

    /// Audit→repair is idempotent: a second cycle on the already-repaired
    /// store and demoted graph rewrites nothing — un-flip / de-dup applied
    /// twice is byte-identical to once. Without this, every re-audit (e.g.
    /// on recovery or epoch advance) would walk repaired logs further away
    /// from the truth.
    #[test]
    fn repair_cycles_are_idempotent(s in small_scenario(),
                                    flip in 0.05f64..0.25,
                                    dup in 0.05f64..0.25,
                                    seed in 0u64..100) {
        use stq_net::SensorFaultMix;
        let cands = s.sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, m, seed);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);

        let monitored: Vec<usize> = g.monitored().iter().enumerate()
            .filter(|&(_, &on)| on).map(|(e, _)| e).collect();
        let mix = SensorFaultMix { flipped: flip, duplicating: dup, ..SensorFaultMix::none() };
        let plan = SensorFaultPlan::generate(seed ^ 0x1de, &monitored, (0.0, 1_500.0), mix);
        let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);

        let first = quarantine_and_repair(&s.sensing, &g, &mut tracked.store,
                                          (0.0, 1_500.0), &RepairConfig::default());
        let once = tracked.store.clone();
        let second = quarantine_and_repair(&s.sensing, &first.graph, &mut tracked.store,
                                           (0.0, 1_500.0), &RepairConfig::default());
        prop_assert!(second.repaired.is_empty(),
            "second cycle rewrote {} logs on an already-repaired graph",
            second.repaired.len());
        for e in 0..once.num_edges() {
            prop_assert_eq!(once.form(e).timestamps(true), tracked.store.form(e).timestamps(true),
                "edge {} forward log changed on the second cycle", e);
            prop_assert_eq!(once.form(e).timestamps(false), tracked.store.form(e).timestamps(false),
                "edge {} backward log changed on the second cycle", e);
        }
    }
}
