//! Geometric tracking for free-roaming objects.
//!
//! The paper's framework assumes movement along a mobility graph; for
//! objects roaming a continuous domain (air/sea — §4.2's "virtual paths"
//! discussion), this module tracks piecewise-linear paths against an
//! arbitrary planar subdivision directly: every leg is intersected with the
//! subdivision's edges, and each crossing updates the same paired tracking
//! forms. Query regions are face sets; boundaries reuse the shared
//! [`BoundaryEdge`] machinery, so differential-form counting stays exact.

use stq_forms::{BoundaryEdge, FormStore, Time};
use stq_geom::{segment_intersection, Point, Polygon, Rect, Segment, SegmentIntersection};
use stq_planar::embedding::{EdgeId, FaceId, Faces};
use stq_planar::Embedding;
use stq_spatial::GridIndex;

/// A planar subdivision used as a sensing field.
#[derive(Debug)]
pub struct Subdivision {
    emb: Embedding,
    faces: Faces,
    outer: FaceId,
    polygons: Vec<Option<Polygon>>,
    /// Edge index: grid over edge midpoints for crossing candidate lookup.
    edge_grid: GridIndex,
    /// Inflate candidate search by the longest edge length.
    max_edge_len: f64,
}

impl Subdivision {
    /// Builds a subdivision from a fully-positioned plane graph embedding.
    pub fn new(emb: Embedding) -> Self {
        assert!(
            emb.positions().iter().all(|p| p.is_some()),
            "subdivision requires positions on every vertex"
        );
        let faces = emb.faces();
        let outer = emb.outer_face(&faces).expect("geometric embedding has an outer face");
        let polygons: Vec<Option<Polygon>> = faces
            .walks
            .iter()
            .enumerate()
            .map(|(fid, walk)| {
                if fid == outer || walk.len() < 3 {
                    return None;
                }
                let pts: Vec<Point> =
                    walk.iter().map(|&h| emb.position(emb.origin(h)).unwrap()).collect();
                Some(Polygon::new(pts))
            })
            .collect();
        let mids: Vec<(Point, u32)> = (0..emb.num_edges())
            .map(|e| {
                let (u, v) = emb.edge_endpoints(e);
                (emb.position(u).unwrap().midpoint(emb.position(v).unwrap()), e as u32)
            })
            .collect();
        let g = ((mids.len() as f64).sqrt().ceil() as usize).max(1);
        let edge_grid = GridIndex::build(&mids, g, g);
        let max_edge_len =
            (0..emb.num_edges()).map(|e| emb.edge_length(e).unwrap()).fold(0.0f64, f64::max);
        Subdivision { emb, faces, outer, polygons, edge_grid, max_edge_len }
    }

    /// The embedding.
    pub fn embedding(&self) -> &Embedding {
        &self.emb
    }

    /// Number of edges (form-store size).
    pub fn num_edges(&self) -> usize {
        self.emb.num_edges()
    }

    /// Interior face count.
    pub fn num_cells(&self) -> usize {
        self.polygons.iter().flatten().count()
    }

    /// The outer (unbounded) face id.
    pub fn outer_face(&self) -> FaceId {
        self.outer
    }

    /// Locates the interior face containing `p`, or `None` for the outer
    /// face / boundary-ambiguous points.
    pub fn locate(&self, p: Point) -> Option<FaceId> {
        // Check the faces adjacent to nearby edges first, then fall back to
        // a full scan (rare: large faces with distant midpoints).
        let mut near: Vec<FaceId> = self
            .edge_grid
            .range(&Rect::centered(p, self.max_edge_len * 2.0, self.max_edge_len * 2.0))
            .into_iter()
            .flat_map(|e| {
                let eid = e.id as usize;
                [self.faces.face_of[2 * eid], self.faces.face_of[2 * eid + 1]]
            })
            .collect();
        near.sort_unstable();
        near.dedup();
        for f in near {
            if let Some(poly) = &self.polygons[f] {
                if poly.locate(p) == stq_geom::polygon::Containment::Inside {
                    return Some(f);
                }
            }
        }
        for (f, poly) in self.polygons.iter().enumerate() {
            if let Some(poly) = poly {
                if poly.locate(p) == stq_geom::polygon::Containment::Inside {
                    return Some(f);
                }
            }
        }
        None
    }

    /// Crossings of the directed leg `a → b`, ordered along the leg:
    /// `(leg_parameter, edge, forward)` where `forward` means the crossing
    /// enters the face left of the edge's forward half-edge.
    pub fn leg_crossings(&self, a: Point, b: Point) -> Vec<(f64, EdgeId, bool)> {
        let leg = Segment::new(a, b);
        let (lo, hi) = leg.bbox();
        let pad = self.max_edge_len;
        let query = Rect::from_corners(lo, hi).inflated(pad);
        let mut out: Vec<(f64, EdgeId, bool)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for cand in self.edge_grid.range(&query) {
            let e = cand.id as usize;
            if !seen.insert(e) {
                continue;
            }
            let (u, v) = self.emb.edge_endpoints(e);
            let seg = Segment::new(self.emb.position(u).unwrap(), self.emb.position(v).unwrap());
            if let SegmentIntersection::Point { t, u: s, .. } = segment_intersection(&leg, &seg) {
                // Skip grazing endpoint touches: they do not change faces.
                if !(1e-9..=1.0 - 1e-9).contains(&s) {
                    continue;
                }
                let dir = b - a;
                let edge_dir = seg.b - seg.a;
                let side = edge_dir.cross(dir);
                if side.abs() < 1e-12 {
                    continue; // tangential
                }
                // Moving towards the left of (u→v) enters face_of[2e].
                out.push((t, e, side > 0.0));
            }
        }
        out.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        out
    }

    /// Tracks a timed free path, recording every edge crossing into `store`.
    /// Returns the crossings `(time, edge, forward)` for inspection.
    pub fn track(
        &self,
        path: &[(Time, Point)],
        store: &mut FormStore,
    ) -> Vec<(Time, EdgeId, bool)> {
        let mut events = Vec::new();
        for w in path.windows(2) {
            let (t0, a) = w[0];
            let (t1, b) = w[1];
            for (frac, e, fwd) in self.leg_crossings(a, b) {
                events.push((t0 + (t1 - t0) * frac, e, fwd));
            }
        }
        events.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for &(t, e, fwd) in &events {
            store.record(e, fwd, t);
        }
        events
    }

    /// Boundary chain of a face set, oriented inward — edges with exactly
    /// one incident face in the region. The outer face may not be part of a
    /// region.
    pub fn region_boundary(&self, region: &std::collections::HashSet<FaceId>) -> Vec<BoundaryEdge> {
        assert!(!region.contains(&self.outer), "regions are sets of interior faces");
        let mut out = Vec::new();
        for e in 0..self.emb.num_edges() {
            let fl = self.faces.face_of[2 * e];
            let fr = self.faces.face_of[2 * e + 1];
            let in_l = region.contains(&fl);
            let in_r = region.contains(&fr);
            if in_l != in_r {
                // Forward crossings enter the left face of half-edge 2e.
                out.push(BoundaryEdge::new(e, in_l));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use stq_forms::snapshot_count;

    /// A 3x3 grid subdivision: 4 unit cells... actually 2x2 cells of size 1.
    fn grid_subdivision() -> Subdivision {
        let mut pos = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                pos.push(Point::new(x as f64, y as f64));
            }
        }
        let mut edges = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    edges.push((i, i + 1));
                }
                if y + 1 < 3 {
                    edges.push((i, i + 3));
                }
            }
        }
        Subdivision::new(Embedding::from_geometry(pos, edges).unwrap())
    }

    #[test]
    fn locate_cells() {
        let s = grid_subdivision();
        assert_eq!(s.num_cells(), 4);
        let f00 = s.locate(Point::new(0.5, 0.5)).unwrap();
        let f11 = s.locate(Point::new(1.5, 1.5)).unwrap();
        assert_ne!(f00, f11);
        assert!(s.locate(Point::new(5.0, 5.0)).is_none());
    }

    #[test]
    fn crossing_direction_matches_entered_face() {
        let s = grid_subdivision();
        let a = Point::new(0.5, 0.5);
        let b = Point::new(1.5, 0.5);
        let crossings = s.leg_crossings(a, b);
        assert_eq!(crossings.len(), 1);
        let (_, e, fwd) = crossings[0];
        let entered = if fwd { s.faces.face_of[2 * e] } else { s.faces.face_of[2 * e + 1] };
        assert_eq!(entered, s.locate(b).unwrap());
        // Reverse leg enters the original cell.
        let back = s.leg_crossings(b, a);
        let (_, e2, fwd2) = back[0];
        assert_eq!(e2, e);
        assert_eq!(fwd2, !fwd);
    }

    #[test]
    fn tracked_path_counts_match_location() {
        let s = grid_subdivision();
        let mut store = FormStore::new(s.num_edges());
        // Enter from outside, wander through all four cells, re-enter one.
        let path = vec![
            (0.0, Point::new(-0.5, 0.5)), // outside
            (1.0, Point::new(0.5, 0.5)),
            (2.0, Point::new(1.5, 0.5)),
            (3.0, Point::new(1.5, 1.5)),
            (4.0, Point::new(0.5, 1.5)),
            (5.0, Point::new(0.5, 0.5)),
            (6.0, Point::new(1.5, 0.5)),
        ];
        s.track(&path, &mut store);
        // At probe times strictly between crossings, the count in the cell
        // currently occupied must be 1 and 0 elsewhere.
        for (t, expect_cell) in [
            (1.2, Point::new(0.5, 0.5)),
            (3.3, Point::new(1.5, 1.5)),
            (5.2, Point::new(0.5, 0.5)),
            (6.5, Point::new(1.5, 0.5)),
        ] {
            let here = s.locate(expect_cell).unwrap();
            for f in 0..s.faces.walks.len() {
                if s.polygons[f].is_none() {
                    continue;
                }
                let region: HashSet<usize> = [f].into_iter().collect();
                let b = s.region_boundary(&region);
                let count = snapshot_count(&store, &b, t);
                let want = if f == here { 1.0 } else { 0.0 };
                assert_eq!(count, want, "face {f} at t={t}");
            }
        }
    }

    #[test]
    fn union_region_cancels_internal_crossings() {
        let s = grid_subdivision();
        let mut store = FormStore::new(s.num_edges());
        // Bounce between two cells 10 times, never leaving their union.
        let mut path = vec![(0.0, Point::new(0.5, 0.5))];
        for i in 0..10 {
            let x = if i % 2 == 0 { 1.5 } else { 0.5 };
            path.push((i as f64 + 1.0, Point::new(x, 0.5)));
        }
        s.track(&path, &mut store);
        let f0 = s.locate(Point::new(0.5, 0.5)).unwrap();
        let f1 = s.locate(Point::new(1.5, 0.5)).unwrap();
        let region: HashSet<usize> = [f0, f1].into_iter().collect();
        let b = s.region_boundary(&region);
        // The object never crossed the union's boundary; the count must be 0
        // (it started inside without an entry event — exactly why road-mode
        // tracking walks objects in from v_ext; geometric mode exposes the
        // raw behaviour).
        assert_eq!(snapshot_count(&store, &b, 100.0), 0.0);
        // But each single cell sees the bouncing without double counting.
        let r0: HashSet<usize> = [f1].into_iter().collect();
        let b0 = s.region_boundary(&r0);
        let c = snapshot_count(&store, &b0, 100.0);
        assert!(c == 0.0 || c == 1.0);
    }

    #[test]
    fn entering_from_outside_counts_once() {
        let s = grid_subdivision();
        let mut store = FormStore::new(s.num_edges());
        let path = vec![
            (0.0, Point::new(-1.0, 0.5)), // outside
            (1.0, Point::new(0.5, 0.5)),  // into cell (0,0)
            (2.0, Point::new(0.5, 1.5)),  // up into cell (0,1)
        ];
        s.track(&path, &mut store);
        let f00 = s.locate(Point::new(0.5, 0.5)).unwrap();
        let f01 = s.locate(Point::new(0.5, 1.5)).unwrap();
        let both: HashSet<usize> = [f00, f01].into_iter().collect();
        let b = s.region_boundary(&both);
        assert_eq!(snapshot_count(&store, &b, 1.5), 1.0);
        assert_eq!(snapshot_count(&store, &b, 0.2), 0.0);
    }

    #[test]
    #[should_panic(expected = "interior faces")]
    fn outer_face_region_rejected() {
        let s = grid_subdivision();
        let region: HashSet<usize> = [s.outer_face()].into_iter().collect();
        let _ = s.region_boundary(&region);
    }
}
