//! # stq-core
//!
//! The framework of the paper, assembled from the substrate crates:
//!
//! 1. [`SensingGraph`] — the dual of a road network: one sensor per block,
//!    one sensing link per road, one sensing cell per junction (§3.2),
//! 2. [`tracker`] — trajectories → directed crossing events → tracking
//!    forms (§4.7), with an identifier-based oracle for exactness tests,
//! 3. [`SampledGraph`] — communication-sensor selection (sampling §4.3 or
//!    submodular maximization §4.4) with triangulation / k-NN connectivity
//!    materialized as shortest paths (§4.5),
//! 4. [`query`] — lower/upper-bound region resolution (§4.6) and the three
//!    count queries (Theorems 4.1–4.3),
//! 5. [`LearnedStore`] — constant-size regression models per edge (§4.8),
//! 6. [`geometric`] — a crossing tracker for free-roaming objects,
//! 7. [`scenario`] — end-to-end synthetic scenario builder for examples,
//!    tests and the experiment harness.
//!
//! ## Quick tour
//!
//! ```
//! use stq_core::prelude::*;
//!
//! // A small city with a tracked workload.
//! let scenario = Scenario::build(ScenarioConfig {
//!     junctions: 120,
//!     mix: WorkloadMix { random_waypoint: 10, commuter: 5, transit: 5 },
//!     ..Default::default()
//! });
//! let sensing = &scenario.sensing;
//!
//! // Select 20% of sensors with quadtree sampling, triangulate, materialize.
//! let cands = sensing.sensor_candidates();
//! let ids = stq_sampling::sample(
//!     stq_sampling::SamplingMethod::QuadTree, &cands, cands.len() / 5, 7);
//! let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
//! let sampled = SampledGraph::from_sensors(sensing, &faces, Connectivity::Triangulation);
//!
//! // Ask a spatiotemporal range count.
//! let (q, t0, t1) = scenario.make_queries(1, 0.05, 1_000.0, 3).remove(0);
//! let out = answer(sensing, &sampled, &scenario.tracked.store, &q,
//!                  QueryKind::Transient(t0, t1), Approximation::Lower);
//! assert!(out.value.is_finite());
//! ```

pub mod abstracted;
pub mod cost;
pub mod degraded;
pub mod engine;
pub mod geometric;
pub mod impute;
pub mod learned_store;
pub mod query;
pub mod render;
pub mod repair;
pub mod sampled;
pub mod scenario;
pub mod sensing;
pub mod streaming;
pub mod tracker;

pub use degraded::{DegradedAnswer, DegradedAnswerer, DegradedPolicy, DegradedStrategy};
pub use engine::{EngineStats, PlanId, QueryEngine, QueryPlan};
pub use impute::{ImputedInterval, Imputer};
pub use learned_store::LearnedStore;
pub use query::{
    answer, ground_truth, relative_error, Approximation, QueryKind, QueryOutcome, QueryRegion,
};
pub use repair::{
    answer_with_bounds, bounds_from_plans, net_flow_interval, quarantine_and_repair, BoundedAnswer,
    RepairConfig, RepairKind, RepairOutcome, RepairedEdge,
};
pub use sampled::{Connectivity, SampledGraph};
pub use sensing::SensingGraph;
pub use tracker::{crossings_of, ingest, ingest_with_faults, Crossing, Tracked};

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::abstracted::AbstractTopology;
    pub use crate::cost::{measure_costs, CostModel};
    pub use crate::degraded::{DegradedAnswer, DegradedAnswerer, DegradedPolicy, DegradedStrategy};
    pub use crate::engine::{EngineStats, PlanId, QueryEngine, QueryPlan};
    pub use crate::geometric::Subdivision;
    pub use crate::impute::{ImputedInterval, Imputer};
    pub use crate::learned_store::LearnedStore;
    pub use crate::query::{
        answer, ground_truth, relative_error, Approximation, QueryKind, QueryOutcome, QueryRegion,
    };
    pub use crate::render::Scene;
    pub use crate::repair::{
        answer_with_bounds, quarantine_and_repair, BoundedAnswer, RepairConfig, RepairOutcome,
    };
    pub use crate::sampled::{Connectivity, SampledGraph};
    pub use crate::scenario::{Scenario, ScenarioConfig};
    pub use crate::sensing::SensingGraph;
    pub use crate::streaming::{StreamStats, StreamTracker, StreamingLearnedStore};
    pub use crate::tracker::{crossings_of, ingest, ingest_with_faults, Crossing, Tracked};
    pub use stq_mobility::trajectory::{TrajectoryConfig, WorkloadMix};
}
