//! Query evaluation on sampled sensing graphs (paper §4.6–§4.7).

use std::collections::HashSet;

use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_forms::{
    snapshot_count, static_interval_count, transient_count, BoundaryEdge, CountSource, Time,
};
use stq_geom::Rect;
use stq_planar::embedding::VertexId;

/// A spatial query region: a rectangle converted to the junction cells of
/// the sensing graph it covers (§5.1.5).
#[derive(Clone, Debug)]
pub struct QueryRegion {
    /// The original rectangle (kept for flooding-cost accounting).
    pub rect: Rect,
    /// Junction cells forming the region.
    pub junctions: HashSet<VertexId>,
}

impl QueryRegion {
    /// Converts a rectangle to a query region on `sensing`.
    pub fn from_rect(sensing: &SensingGraph, rect: Rect) -> Self {
        QueryRegion { rect, junctions: sensing.junctions_in_rect(&rect).into_iter().collect() }
    }

    /// True when the rectangle covers no junction cell.
    pub fn is_empty(&self) -> bool {
        self.junctions.is_empty()
    }
}

/// Which approximation of the query region to evaluate (§4.6, Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approximation {
    /// `R₂`: maximal sampled region enclosed by the query (count ≤ exact).
    Lower,
    /// `R₁`: minimal sampled region containing the query (count ≥ exact).
    Upper,
}

/// The three query types (§3.3, §4.7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryKind {
    /// Objects inside at an instant (Theorems 4.1/4.2).
    Snapshot(Time),
    /// Objects present during the whole interval (query type 1), estimated as
    /// `min(snapshot(t0), snapshot(t1))` — an aggregate upper bound.
    Static(Time, Time),
    /// Net population change over the interval (query type 2, Theorem 4.3).
    Transient(Time, Time),
}

/// The answer to one query plus its communication accounting.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The (possibly fractional, with learned stores) count.
    pub value: f64,
    /// True when the sampled graph could not cover the region at all —
    /// a *query miss* (§5.5).
    pub miss: bool,
    /// Sensors contacted on the region perimeter.
    pub nodes_accessed: usize,
    /// Monitored sensing links integrated over.
    pub edges_accessed: usize,
    /// Junction cells of the resolved region.
    pub covered_cells: usize,
}

/// Answers a query on a sampled graph, integrating the tracking forms along
/// the resolved region's boundary.
///
/// `store` may be the exact [`stq_forms::FormStore`] or a learned store —
/// any [`CountSource`].
///
/// This is a thin wrapper that compiles a one-shot
/// [`QueryPlan`](crate::engine::QueryPlan) and executes it; callers issuing
/// repeated or batched queries should hold a
/// [`QueryEngine`](crate::engine::QueryEngine) so plans are cached and
/// reused.
pub fn answer<S: CountSource + ?Sized>(
    sensing: &SensingGraph,
    sampled: &SampledGraph,
    store: &S,
    query: &QueryRegion,
    kind: QueryKind,
    approx: Approximation,
) -> QueryOutcome {
    crate::engine::QueryPlan::compile(sensing, sampled, query, approx).execute(store, kind)
}

/// Evaluates a query kind over an explicit boundary chain.
pub fn evaluate<S: CountSource + ?Sized>(
    store: &S,
    boundary: &[BoundaryEdge],
    kind: QueryKind,
) -> f64 {
    match kind {
        QueryKind::Snapshot(t) => snapshot_count(store, boundary, t),
        QueryKind::Static(t0, t1) => static_interval_count(store, boundary, t0, t1),
        QueryKind::Transient(t0, t1) => transient_count(store, boundary, t0, t1),
    }
}

/// Ground truth `η`: the same query answered on the *unsampled* graph
/// (§5.1.4 — "the actual range count (count from the unsampled graph G)").
pub fn ground_truth<S: CountSource + ?Sized>(
    sensing: &SensingGraph,
    store: &S,
    query: &QueryRegion,
    kind: QueryKind,
) -> f64 {
    crate::engine::QueryPlan::compile_exact(sensing, query).execute(store, kind).value
}

/// Relative error `|η − η̂| / η`; `None` when the ground truth is zero
/// (the paper's error metric is undefined there — such queries are skipped).
pub fn relative_error(truth: f64, estimate: f64) -> Option<f64> {
    if truth.abs() < 1e-12 {
        None
    } else {
        Some((truth - estimate).abs() / truth.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::Connectivity;
    use crate::tracker::ingest;
    use stq_mobility::gen::delaunay_city;
    use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

    struct Fixture {
        sensing: SensingGraph,
        tracked: crate::tracker::Tracked,
    }

    fn fixture() -> Fixture {
        let net = delaunay_city(120, 0.15, 6, 23).unwrap();
        let sensing = SensingGraph::new(net);
        let cfg =
            TrajectoryConfig { speed: 8.0, pause: 20.0, duration: 3_000.0, exit_probability: 0.3 };
        let mix = WorkloadMix { random_waypoint: 15, commuter: 10, transit: 8 };
        let trajs = generate_mix(sensing.road(), mix, cfg, 77);
        let tracked = ingest(&sensing, &trajs);
        Fixture { sensing, tracked }
    }

    fn mid_rect(sensing: &SensingGraph, lo: f64, hi: f64) -> Rect {
        let bb = sensing.road().bbox();
        Rect::from_corners(bb.min.lerp(bb.max, lo), bb.min.lerp(bb.max, hi))
    }

    #[test]
    fn unsampled_answer_matches_ground_truth_and_oracle() {
        let f = fixture();
        let g = SampledGraph::unsampled(&f.sensing);
        let q = QueryRegion::from_rect(&f.sensing, mid_rect(&f.sensing, 0.25, 0.7));
        assert!(!q.is_empty());
        for &t in &[500.0, 1500.0, 2500.0] {
            let out = answer(
                &f.sensing,
                &g,
                &f.tracked.store,
                &q,
                QueryKind::Snapshot(t),
                Approximation::Lower,
            );
            assert!(!out.miss);
            let truth = ground_truth(&f.sensing, &f.tracked.store, &q, QueryKind::Snapshot(t));
            assert_eq!(out.value, truth);
            let oracle = f.tracked.oracle.snapshot_count(&|j| q.junctions.contains(&j), t) as f64;
            assert_eq!(out.value, oracle);
        }
    }

    #[test]
    fn lower_le_truth_le_upper() {
        let f = fixture();
        let cands = f.sensing.sensor_candidates();
        let m = (cands.len() / 5).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&f.sensing, &faces, Connectivity::Triangulation);

        let q = QueryRegion::from_rect(&f.sensing, mid_rect(&f.sensing, 0.2, 0.75));
        let t = 1_800.0;
        let truth = ground_truth(&f.sensing, &f.tracked.store, &q, QueryKind::Snapshot(t));
        let lo = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(t),
            Approximation::Lower,
        );
        let hi = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(t),
            Approximation::Upper,
        );
        if !lo.miss {
            assert!(lo.value <= truth + 1e-9, "lower {} vs truth {truth}", lo.value);
        }
        assert!(hi.value + 1e-9 >= truth, "upper {} vs truth {truth}", hi.value);
    }

    #[test]
    fn miss_reported_for_tiny_query_on_sparse_graph() {
        let f = fixture();
        let cands = f.sensing.sensor_candidates();
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, 3, 9);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&f.sensing, &faces, Connectivity::Triangulation);
        // A tiny rectangle: almost surely no component fits inside.
        let q = QueryRegion::from_rect(&f.sensing, mid_rect(&f.sensing, 0.48, 0.53));
        let out = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(1000.0),
            Approximation::Lower,
        );
        if out.miss {
            assert_eq!(out.value, 0.0);
            assert_eq!(out.nodes_accessed, 0);
        }
        // Upper either answers with a true bound or misses (when the query
        // touches the outside-world component of a sparse graph).
        let up = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(1000.0),
            Approximation::Upper,
        );
        if !up.miss {
            let truth = ground_truth(&f.sensing, &f.tracked.store, &q, QueryKind::Snapshot(1000.0));
            assert!(up.value + 1e-9 >= truth);
        }
    }

    #[test]
    fn sampled_accesses_fewer_nodes_than_flooding() {
        let f = fixture();
        let cands = f.sensing.sensor_candidates();
        let m = (cands.len() / 10).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::KdTree, &cands, m, 3);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&f.sensing, &faces, Connectivity::Triangulation);
        let rect = mid_rect(&f.sensing, 0.1, 0.9);
        let q = QueryRegion::from_rect(&f.sensing, rect);
        let out = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(1000.0),
            Approximation::Lower,
        );
        let flooded = f.sensing.sensors_in_rect(&rect).len();
        assert!(
            out.nodes_accessed < flooded,
            "perimeter {} vs flood {flooded}",
            out.nodes_accessed
        );
    }

    #[test]
    fn transient_and_static_consistent_with_oracle_on_unsampled() {
        let f = fixture();
        let g = SampledGraph::unsampled(&f.sensing);
        let q = QueryRegion::from_rect(&f.sensing, mid_rect(&f.sensing, 0.3, 0.8));
        let (t0, t1) = (400.0, 2_200.0);
        let tr = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Transient(t0, t1),
            Approximation::Lower,
        );
        let oracle_net =
            f.tracked.oracle.transient_count(&|j| q.junctions.contains(&j), t0, t1) as f64;
        assert_eq!(tr.value, oracle_net);

        // Static interval: the form estimator lower-bounds the oracle.
        let st = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Static(t0, t1),
            Approximation::Lower,
        );
        let oracle_static =
            f.tracked.oracle.static_interval_count(&|j| q.junctions.contains(&j), t0, t1) as f64;
        assert!(
            st.value + 1e-9 >= oracle_static,
            "min-of-snapshots upper-bounds the true static count"
        );
        assert!(st.value >= 0.0);
    }

    #[test]
    fn relative_error_semantics() {
        assert_eq!(relative_error(10.0, 9.0), Some(0.1));
        assert_eq!(relative_error(0.0, 5.0), None);
        assert_eq!(relative_error(4.0, 4.0), Some(0.0));
    }

    #[test]
    fn empty_query_region() {
        let f = fixture();
        let q = QueryRegion::from_rect(
            &f.sensing,
            Rect::from_corners(
                stq_geom::Point::new(-99.0, -99.0),
                stq_geom::Point::new(-98.0, -98.0),
            ),
        );
        assert!(q.is_empty());
        let g = SampledGraph::unsampled(&f.sensing);
        let out = answer(
            &f.sensing,
            &g,
            &f.tracked.store,
            &q,
            QueryKind::Snapshot(1.0),
            Approximation::Lower,
        );
        assert!(out.miss);
    }
}
