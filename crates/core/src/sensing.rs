//! The sensing graph `G`: dual of the road network (paper §3.2).

use std::collections::HashSet;

use stq_geom::{Point, Polygon, Rect};
use stq_mobility::RoadNetwork;
use stq_planar::dual::DualGraph;
use stq_planar::embedding::{EdgeId, FaceId, Faces, VertexId};
use stq_planar::paths::WeightedAdj;
use stq_spatial::GridIndex;

use stq_forms::BoundaryEdge;

/// The sensing graph: one sensor per road-network face (city block), one
/// communication link per road edge, one sensing cell per junction.
///
/// Everything is indexed on the primal (road) side — vertex–edge duality
/// makes that lossless: sensing edge `e` *is* road edge `e`, sensing cell
/// `j` *is* junction `j`, sensor `f` *is* road face `f`.
#[derive(Clone, Debug)]
pub struct SensingGraph {
    road: RoadNetwork,
    faces: Faces,
    dual: DualGraph,
    /// Interior point of each face's polygon — the sensor's physical
    /// location. `None` for the faces incident to `v_ext` (the outside
    /// world has no sensor).
    sensor_pos: Vec<Option<Point>>,
    /// Junction lookup grid for rectangle queries.
    junction_grid: GridIndex,
    /// Cached dual adjacency for shortest-path materialization.
    dual_adj: WeightedAdj,
}

impl SensingGraph {
    /// Builds the sensing graph of a road network.
    pub fn new(road: RoadNetwork) -> Self {
        let emb = road.embedding();
        let faces = emb.faces();
        let dual = DualGraph::new(emb, &faces);

        // Sensor positions: interior points of fully-positioned face walks.
        let mut sensor_pos: Vec<Option<Point>> = Vec::with_capacity(faces.walks.len());
        for walk in &faces.walks {
            let verts: Vec<Option<Point>> =
                walk.iter().map(|&h| emb.position(emb.origin(h))).collect();
            let pos = if verts.iter().all(|p| p.is_some()) && walk.len() >= 3 {
                let pts: Vec<Point> = verts.into_iter().flatten().collect();
                let poly = Polygon::new(pts);
                // Interior faces (positive area) host sensors; the outer
                // face does not.
                if poly.signed_area() > 0.0 {
                    Some(poly.interior_point())
                } else {
                    None
                }
            } else {
                None
            };
            sensor_pos.push(pos);
        }

        // Junction grid.
        let entries: Vec<(Point, u32)> =
            road.junctions().map(|v| (road.position(v), v as u32)).collect();
        let g = ((entries.len() as f64).sqrt().ceil() as usize).max(1);
        let junction_grid = GridIndex::build(&entries, g, g);

        // Dual adjacency with Euclidean weights between sensor positions;
        // links touching sensorless faces are prohibitively expensive so
        // sampled-graph paths stay inside the monitored area.
        let mut dual_adj: WeightedAdj = vec![Vec::new(); dual.num_vertices];
        for (e, &(f, g2)) in dual.edge_faces.iter().enumerate() {
            if f == g2 {
                continue; // bridge loops carry no routing value
            }
            let w = match (sensor_pos[f], sensor_pos[g2]) {
                (Some(a), Some(b)) => a.dist(b).max(1e-9),
                _ => 1e15,
            };
            dual_adj[f].push((g2, e, w));
            dual_adj[g2].push((f, e, w));
        }

        SensingGraph { road, faces, dual, sensor_pos, junction_grid, dual_adj }
    }

    /// The underlying road network.
    pub fn road(&self) -> &RoadNetwork {
        &self.road
    }

    /// Faces of the road network (= sensors + outside).
    pub fn faces(&self) -> &Faces {
        &self.faces
    }

    /// The dual graph bookkeeping.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// Weighted dual adjacency (sensor-to-sensor communication links).
    pub fn dual_adjacency(&self) -> &WeightedAdj {
        &self.dual_adj
    }

    /// Total number of faces (interior sensors + sensorless outside faces).
    pub fn num_faces(&self) -> usize {
        self.faces.walks.len()
    }

    /// Number of road edges (= sensing-graph links).
    pub fn num_edges(&self) -> usize {
        self.road.embedding().num_edges()
    }

    /// Sensor position of face `f`, `None` for the outside faces.
    pub fn sensor_pos(&self, f: FaceId) -> Option<Point> {
        self.sensor_pos[f]
    }

    /// All sensor-bearing faces with their positions — the candidate set for
    /// the sampling methods of §4.3.
    pub fn sensor_candidates(&self) -> Vec<(Point, u32)> {
        self.sensor_pos.iter().enumerate().filter_map(|(f, p)| p.map(|p| (p, f as u32))).collect()
    }

    /// Number of placeable sensors (interior faces).
    pub fn num_sensors(&self) -> usize {
        self.sensor_pos.iter().flatten().count()
    }

    /// Sensors whose position falls inside `rect` — what a centralized or
    /// axis-aligned in-network system must flood for this query (§2.3).
    pub fn sensors_in_rect(&self, rect: &Rect) -> Vec<FaceId> {
        self.sensor_pos
            .iter()
            .enumerate()
            .filter(|&(_, p)| p.map(|p| rect.contains(p)).unwrap_or(false))
            .map(|(f, _)| f)
            .collect()
    }

    /// Junctions inside `rect`, excluding `v_ext` — a rectangle query region
    /// converted to sensing cells (paper §5.1.5).
    pub fn junctions_in_rect(&self, rect: &Rect) -> Vec<VertexId> {
        let mut out: Vec<VertexId> =
            self.junction_grid.range(rect).into_iter().map(|e| e.id as usize).collect();
        out.sort_unstable();
        out
    }

    /// Boundary chain of a junction set `U`: every edge with exactly one
    /// endpoint in `U`, oriented inward. With `monitored = None` all edges
    /// qualify (the unsampled graph); otherwise only monitored edges do —
    /// in a valid sampled region the caller guarantees every boundary edge
    /// is monitored, which `debug_assert`s in the walk verify.
    pub fn boundary_of(
        &self,
        region: &HashSet<VertexId>,
        monitored: Option<&[bool]>,
    ) -> Vec<BoundaryEdge> {
        self.walk_boundary(region, monitored, None)
    }

    /// [`boundary_of`](Self::boundary_of) plus the number of distinct
    /// sensors incident to the chain, computed in the *same* pass: each
    /// boundary edge's two dual faces are folded into the sensor set as the
    /// edge is emitted, instead of re-walking the finished chain through
    /// [`boundary_sensors`](Self::boundary_sensors).
    pub fn boundary_with_sensors(
        &self,
        region: &HashSet<VertexId>,
        monitored: Option<&[bool]>,
    ) -> (Vec<BoundaryEdge>, usize) {
        let mut sensors: HashSet<FaceId> = HashSet::new();
        let chain = self.walk_boundary(region, monitored, Some(&mut sensors));
        (chain, sensors.len())
    }

    /// The single boundary walk behind both public entry points. Region
    /// vertices are visited in sorted order, so the emitted chain — and
    /// therefore the order of every floating-point fold over it — is a
    /// deterministic function of the region's *contents*, not of `HashSet`
    /// iteration order. Plan fingerprints and bit-identity tests rely on
    /// this.
    fn walk_boundary(
        &self,
        region: &HashSet<VertexId>,
        monitored: Option<&[bool]>,
        mut sensors: Option<&mut HashSet<FaceId>>,
    ) -> Vec<BoundaryEdge> {
        let emb = self.road.embedding();
        let mut verts: Vec<VertexId> = region.iter().copied().collect();
        verts.sort_unstable();
        let mut out = Vec::new();
        let mut seen: HashSet<EdgeId> = HashSet::new();
        for &u in &verts {
            for &h in emb.rotation(u) {
                let e = emb.edge_of(h);
                let (a, b) = emb.edge_endpoints(e);
                let inside_a = region.contains(&a);
                let inside_b = region.contains(&b);
                if inside_a == inside_b || !seen.insert(e) {
                    continue;
                }
                if let Some(mon) = monitored {
                    debug_assert!(
                        mon[e],
                        "boundary edge {e} of a sampled region must be monitored"
                    );
                    if !mon[e] {
                        continue;
                    }
                }
                if let Some(fs) = sensors.as_deref_mut() {
                    let (f, g) = self.dual.edge_faces[e];
                    fs.insert(f);
                    fs.insert(g);
                }
                out.push(BoundaryEdge::new(e, inside_b));
            }
        }
        out
    }

    /// Distinct sensors (faces) incident to a boundary chain — the nodes a
    /// perimeter-based query actually contacts.
    pub fn boundary_sensors(&self, boundary: &[BoundaryEdge]) -> Vec<FaceId> {
        let mut fs: Vec<FaceId> = boundary
            .iter()
            .flat_map(|be| {
                let (f, g) = self.dual.edge_faces[be.edge];
                [f, g]
            })
            .collect();
        fs.sort_unstable();
        fs.dedup();
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_mobility::gen::perturbed_grid;

    fn sensing() -> SensingGraph {
        SensingGraph::new(perturbed_grid(5, 5, 0.1, 0.0, 4, 3).unwrap())
    }

    #[test]
    fn sensor_counts() {
        let s = sensing();
        // A 5x5 lattice has 16 interior blocks.
        assert_eq!(s.num_sensors(), 16);
        assert_eq!(s.sensor_candidates().len(), 16);
        // All candidate positions are inside the network bbox.
        let bb = s.road().bbox().inflated(1e-6);
        for (p, _) in s.sensor_candidates() {
            assert!(bb.contains(p));
        }
    }

    #[test]
    fn junction_rect_lookup() {
        let s = sensing();
        let all = s.junctions_in_rect(&s.road().bbox().inflated(1.0));
        assert_eq!(all.len(), 25);
        assert!(!all.contains(&s.road().v_ext()));
        let empty = s.junctions_in_rect(&Rect::from_corners(
            Point::new(-50.0, -50.0),
            Point::new(-40.0, -40.0),
        ));
        assert!(empty.is_empty());
    }

    #[test]
    fn boundary_orientation_inward() {
        let s = sensing();
        let emb = s.road().embedding();
        // Single-junction region: all incident edges are boundary, inward.
        let u = 12; // centre of the 5x5 lattice
        let region: HashSet<usize> = [u].into_iter().collect();
        let b = s.boundary_of(&region, None);
        assert_eq!(b.len(), emb.degree(u));
        for be in &b {
            let (a, bb) = emb.edge_endpoints(be.edge);
            let head = if be.inward_forward { bb } else { a };
            assert_eq!(head, u, "inward orientation must point at the region");
        }
    }

    #[test]
    fn interior_edges_excluded_from_boundary() {
        let s = sensing();
        // A 2x2 block of junctions: 12, 13, 17, 18 on the 5-lattice.
        let region: HashSet<usize> = [12, 13, 17, 18].into_iter().collect();
        let b = s.boundary_of(&region, None);
        for be in &b {
            let (a, bb) = s.road().embedding().edge_endpoints(be.edge);
            assert_ne!(region.contains(&a), region.contains(&bb));
        }
        // Interior edges: (12,13), (17,18), (12,17), (13,18) — none listed.
        let ids: HashSet<usize> = b.iter().map(|be| be.edge).collect();
        for &(u, v) in &[(12, 13), (17, 18), (12, 17), (13, 18)] {
            let e = s.road().edge_between(u, v).unwrap();
            assert!(!ids.contains(&e));
        }
    }

    #[test]
    fn boundary_sensors_are_adjacent_faces() {
        let s = sensing();
        let region: HashSet<usize> = [12].into_iter().collect();
        let b = s.boundary_of(&region, None);
        let sensors = s.boundary_sensors(&b);
        // The four blocks around the centre junction.
        assert_eq!(sensors.len(), 4);
        for f in sensors {
            assert!(s.sensor_pos(f).is_some());
        }
    }

    #[test]
    fn sensors_in_rect_subset() {
        let s = sensing();
        let half = Rect::from_corners(Point::new(-0.5, -0.5), Point::new(2.0, 4.5));
        let inside = s.sensors_in_rect(&half);
        assert!(!inside.is_empty());
        assert!(inside.len() < s.num_sensors());
    }

    #[test]
    fn dual_adjacency_avoids_outside() {
        let s = sensing();
        for (f, adj) in s.dual_adjacency().iter().enumerate() {
            for &(g, _, w) in adj {
                if s.sensor_pos(f).is_some() && s.sensor_pos(g).is_some() {
                    assert!(w < 1e9);
                } else {
                    assert!(w >= 1e9);
                }
            }
        }
    }
}
