//! Probabilistic count imputation for quarantined edges, with certified
//! error bounds.
//!
//! Quarantine demotes a corrupted edge to unmonitored, which merges the
//! faces it separated and collapses query coverage. But the edge's *true*
//! net flow is not unconstrained: every fine-grained face it bounded obeys
//! the 1-form conservation law (recorded population ≥ 0, and ≤ the
//! population of whatever merged region encloses it — both computable from
//! the surviving healthy boundary alone). This module solves that constraint
//! system by **interval propagation**: each quarantined edge gets a running
//! interval for its net forward flow, and every face constraint narrows the
//! intervals of the edges on its boundary from the intervals of the others.
//!
//! The result is *certified*: the true net flow provably lies inside every
//! returned interval, because
//!
//! 1. the initial intervals `(−∞, +∞)` trivially contain the truth,
//! 2. each narrowing step only removes values that would violate a
//!    conservation constraint the truth satisfies (face population in
//!    `[0, P_enclosing]`, with `P_enclosing` computed exactly from healthy
//!    edges), and
//! 3. intersection of sound intervals is sound.
//!
//! A single quarantined edge on an otherwise healthy face pins in one round
//! (this generalizes [`crate::repair::net_flow_interval`]); chains of
//! quarantined edges narrow each other over successive rounds. Faces inside
//! the exterior merged component have no finite population cap, so their
//! edges may keep a one-sided or vacuous interval — the degraded-answer
//! escalation falls back to a learned point estimate there
//! ([`crate::degraded`]).

use std::collections::{HashMap, HashSet};

use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_forms::{CountSource, Time};

/// One face-conservation constraint over quarantined-edge variables.
struct FaceConstraint {
    /// Healthy boundary terms `(edge, inward_forward)` — summed exactly.
    healthy: Vec<(usize, bool)>,
    /// Quarantined boundary terms `(variable index, sign)`: the face's net
    /// inflow through variable `v` is `sign · x_v` where `x_v` is the net
    /// *forward* flow of the edge.
    terms: Vec<(usize, f64)>,
    /// Inward-oriented healthy boundaries of enclosing components (one per
    /// cap graph that fully contains this face's junctions) — each exact
    /// population caps this face's; evaluation takes the tightest. Empty
    /// when every cap graph merged the face into its exterior (no cap).
    cap_boundaries: Vec<Vec<(usize, bool)>>,
}

/// Population terms of one fine face, for region-sum bounds.
struct FacePop {
    /// The face's junction cells (fine components partition junctions).
    junctions: Vec<usize>,
    /// Healthy boundary terms — folded exactly.
    healthy: Vec<(usize, bool)>,
    /// Quarantined boundary terms `(variable index, sign)`.
    terms: Vec<(usize, f64)>,
    /// Cap components `(cap graph index, component id)` fully containing
    /// this face.
    caps: Vec<(usize, usize)>,
}

/// Certified net-flow intervals for quarantined edges, derived from
/// conservation residuals of the surviving healthy boundary.
///
/// Built once per quarantine outcome; [`Imputer::intervals_at`] evaluates
/// the constraint system at a query time, and [`Imputer::evaluate`] returns
/// a reusable [`Evaluation`] that additionally bounds whole-region
/// populations by summing per-face bounds.
pub struct Imputer {
    /// Edge id of each variable.
    edges: Vec<usize>,
    faces: Vec<FaceConstraint>,
    /// Every fine face (healthy ones included), for region population sums.
    face_pops: Vec<FacePop>,
    /// Inward-oriented healthy boundary of each referenced cap component.
    cap_comp_boundary: HashMap<(usize, usize), Vec<(usize, bool)>>,
    /// Fine faces fully contained in each referenced cap component.
    cap_comp_faces: HashMap<(usize, usize), Vec<usize>>,
    /// Narrowing rounds per evaluation (chains need one round per link).
    rounds: usize,
}

/// The per-edge result of one [`Imputer::intervals_at`] evaluation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImputedInterval {
    /// Certified lower bound on the edge's net forward flow (may be `−∞`).
    pub lo: f64,
    /// Certified upper bound (may be `+∞`).
    pub hi: f64,
}

impl ImputedInterval {
    /// Both sides certified finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// Midpoint point-estimate; 0 when either side is vacuous.
    pub fn point(&self) -> f64 {
        if self.is_finite() {
            0.5 * (self.lo + self.hi)
        } else {
            0.0
        }
    }
}

impl Imputer {
    /// Builds the constraint system: one variable per quarantined edge that
    /// `fine` monitors, one constraint per fine-grained face whose boundary
    /// touches a variable, capped by the exact population of any
    /// `cap_graphs` component that *fully contains* the face's junctions
    /// (containment of the junction sets is what makes "face population ≤
    /// component population" a theorem — a component that merely overlaps
    /// the face caps nothing). Every cap graph must monitor no quarantined
    /// edge — its boundaries are folded as exact. The degraded answerer
    /// passes its demoted graph (a coarsening, so it always contains) and
    /// its rerouted graph (finer, so it caps tighter where it contains).
    pub fn new(
        sensing: &SensingGraph,
        fine: &SampledGraph,
        cap_graphs: &[&SampledGraph],
        quarantined: &[usize],
    ) -> Self {
        let mut var_of: HashMap<usize, usize> = HashMap::new();
        let mut edges = Vec::new();
        for &q in quarantined {
            if fine.monitored()[q] && !var_of.contains_key(&q) {
                var_of.insert(q, edges.len());
                edges.push(q);
            }
        }
        let cap_specs: Vec<HashMap<usize, Vec<(usize, bool)>>> = cap_graphs
            .iter()
            .map(|g| g.audit_components(sensing).into_iter().map(|c| (c.id, c.boundary)).collect())
            .collect();
        // Cap components fully containing a junction set (containment of
        // the junction sets is what makes "face population ≤ component
        // population" a theorem — a component that merely overlaps caps
        // nothing).
        let comps_of = |junctions: &[usize]| {
            let mut keys = Vec::new();
            for (gi, (g, specs)) in cap_graphs.iter().zip(&cap_specs).enumerate() {
                let comp = g.component_of(junctions[0]);
                if comp == g.ext_component()
                    || !junctions.iter().all(|&j| g.component_of(j) == comp)
                {
                    continue;
                }
                if specs.contains_key(&comp) {
                    keys.push((gi, comp));
                }
            }
            keys
        };
        let boundaries_for = |caps: &[(usize, usize)]| {
            caps.iter().map(|&(gi, c)| cap_specs[gi][&c].clone()).collect::<Vec<_>>()
        };

        // Per-face data: boundary split into healthy terms and variables,
        // junction set, and containing cap components. Fully healthy faces
        // carry no constraint but still contribute exact population terms
        // to region sums.
        let mut face_pops: Vec<FacePop> = Vec::new();
        let mut cap_comp_boundary: HashMap<(usize, usize), Vec<(usize, bool)>> = HashMap::new();
        let mut cap_comp_faces: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for spec in fine.audit_components(sensing) {
            let mut healthy = Vec::new();
            let mut terms = Vec::new();
            for &(e, inward_forward) in &spec.boundary {
                match var_of.get(&e) {
                    Some(&v) => terms.push((v, if inward_forward { 1.0 } else { -1.0 })),
                    None => healthy.push((e, inward_forward)),
                }
            }
            let junctions = fine.components()[spec.id].clone();
            let caps = comps_of(&junctions);
            for &k in &caps {
                cap_comp_boundary.entry(k).or_insert_with(|| cap_specs[k.0][&k.1].clone());
                cap_comp_faces.entry(k).or_default().push(face_pops.len());
            }
            face_pops.push(FacePop { junctions, healthy, terms, caps });
        }

        // Raw constrained faces feed the narrowing system and its unions:
        // (healthy boundary, quarantined terms, junction cells) per face.
        type RawFace = (Vec<(usize, bool)>, Vec<(usize, f64)>, Vec<usize>);
        let raw: Vec<RawFace> = face_pops
            .iter()
            .filter(|f| !f.terms.is_empty())
            .map(|f| (f.healthy.clone(), f.terms.clone(), f.junctions.clone()))
            .collect();

        let mut faces = Vec::new();
        for (healthy, terms, junctions) in &raw {
            faces.push(FaceConstraint {
                healthy: healthy.clone(),
                terms: terms.clone(),
                cap_boundaries: boundaries_for(&comps_of(junctions)),
            });
        }
        // Redundant pairwise unions: two faces sharing a variable combine
        // into a constraint where the shared variable cancels symbolically
        // (it bounds both faces with opposite orientations), leaving a
        // union face with strictly fewer unknowns per constraint than the
        // chain it spans. Shared *healthy* edges appear with both
        // orientations and cancel numerically at evaluation. This is a
        // standard interval-propagation strengthening: the union is a
        // linear combination the truth satisfies, so narrowing with it is
        // as sound as with the primitive faces — it just converges where
        // per-face propagation stalls on multi-unknown faces.
        for i in 0..raw.len() {
            for j in (i + 1)..raw.len() {
                if !raw[i].1.iter().any(|&(v, _)| raw[j].1.iter().any(|&(w, _)| w == v)) {
                    continue;
                }
                let mut merged: HashMap<usize, f64> = HashMap::new();
                for &(v, s) in raw[i].1.iter().chain(&raw[j].1) {
                    *merged.entry(v).or_insert(0.0) += s;
                }
                let terms: Vec<(usize, f64)> =
                    merged.into_iter().filter(|&(_, s)| s != 0.0).collect();
                if terms.is_empty() {
                    continue;
                }
                let healthy: Vec<(usize, bool)> =
                    raw[i].0.iter().chain(&raw[j].0).copied().collect();
                let junctions: Vec<usize> = raw[i].2.iter().chain(&raw[j].2).copied().collect();
                let cap_boundaries = boundaries_for(&comps_of(&junctions));
                if cap_boundaries.is_empty() && terms.len() >= raw[i].1.len() + raw[j].1.len() {
                    continue; // nothing cancelled and nothing caps: no new information
                }
                faces.push(FaceConstraint { healthy, terms, cap_boundaries });
            }
        }
        Imputer { edges, faces, face_pops, cap_comp_boundary, cap_comp_faces, rounds: 12 }
    }

    /// The quarantined edges with a variable (monitored in the fine graph).
    pub fn edges(&self) -> &[usize] {
        &self.edges
    }

    /// Number of face constraints in the system.
    pub fn num_constraints(&self) -> usize {
        self.faces.len()
    }

    /// Evaluates the constraint system at time `t`: certified intervals for
    /// each variable edge's net forward flow `count(e, →, t) − count(e, ←, t)`,
    /// keyed by edge id. Sound against any `store` whose healthy-edge counts
    /// are exact.
    pub fn intervals_at<S: CountSource + ?Sized>(
        &self,
        store: &S,
        t: Time,
    ) -> HashMap<usize, ImputedInterval> {
        self.evaluate(store, t).intervals
    }

    /// Runs one propagation of the constraint system at time `t` and
    /// returns a reusable snapshot: per-edge intervals plus per-face
    /// population bounds for certified region sums.
    pub fn evaluate<S: CountSource + ?Sized>(&self, store: &S, t: Time) -> Evaluation<'_> {
        let net = |e: usize, inward_forward: bool| {
            store.count_until(e, inward_forward, t) - store.count_until(e, !inward_forward, t)
        };
        // Per face: exact healthy net inflow and exact population cap.
        let residuals: Vec<(f64, f64)> = self
            .faces
            .iter()
            .map(|f| {
                let h: f64 = f.healthy.iter().map(|&(e, iw)| net(e, iw)).sum();
                let cap = f
                    .cap_boundaries
                    .iter()
                    .map(|b| b.iter().map(|&(e, iw)| net(e, iw)).sum::<f64>().max(0.0))
                    .fold(f64::INFINITY, f64::min);
                (h, cap)
            })
            .collect();

        let mut lo = vec![f64::NEG_INFINITY; self.edges.len()];
        let mut hi = vec![f64::INFINITY; self.edges.len()];
        for _ in 0..self.rounds {
            let mut changed = false;
            for (f, &(h, cap)) in self.faces.iter().zip(&residuals) {
                // Face population: 0 ≤ h + Σ sign·x ≤ cap. Narrow each term
                // from the extremes of the others.
                for (i, &(v, sign)) in f.terms.iter().enumerate() {
                    let mut others_min = 0.0f64;
                    let mut others_max = 0.0f64;
                    for (k, &(w, s)) in f.terms.iter().enumerate() {
                        if k == i {
                            continue;
                        }
                        let (a, b) = if s > 0.0 { (lo[w], hi[w]) } else { (-hi[w], -lo[w]) };
                        others_min += a;
                        others_max += b;
                    }
                    // sign·x_v ∈ [0 − h − others_max, cap − h − others_min].
                    let term_lo =
                        if others_max.is_finite() { -h - others_max } else { f64::NEG_INFINITY };
                    let term_hi = if cap.is_finite() && others_min.is_finite() {
                        cap - h - others_min
                    } else {
                        f64::INFINITY
                    };
                    let (new_lo, new_hi) =
                        if sign > 0.0 { (term_lo, term_hi) } else { (-term_hi, -term_lo) };
                    if new_lo > lo[v] + 1e-9 {
                        // Exact integer data cannot produce an empty
                        // interval; guard against float noise anyway.
                        lo[v] = new_lo.min(hi[v]);
                        changed = true;
                    }
                    if new_hi < hi[v] - 1e-9 {
                        hi[v] = new_hi.max(lo[v]);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let intervals: HashMap<usize, ImputedInterval> = self
            .edges
            .iter()
            .zip(lo.iter().zip(&hi))
            .map(|(&e, (&l, &h))| (e, ImputedInterval { lo: l, hi: h }))
            .collect();

        // Per-face population bounds from the narrowed intervals: exact for
        // fully healthy faces, `[max(0, lo-fold), hi-fold]` otherwise (the
        // upper fold may stay vacuous).
        let mut face_lo = Vec::with_capacity(self.face_pops.len());
        let mut face_hi = Vec::with_capacity(self.face_pops.len());
        let mut face_exact = Vec::with_capacity(self.face_pops.len());
        for f in &self.face_pops {
            let h: f64 = f.healthy.iter().map(|&(e, iw)| net(e, iw)).sum();
            if f.terms.is_empty() {
                face_lo.push(h.max(0.0));
                face_hi.push(h.max(0.0));
                face_exact.push(true);
            } else {
                let (mut lo_acc, mut hi_acc) = (h, h);
                for &(v, s) in &f.terms {
                    let (a, b) = if s > 0.0 { (lo[v], hi[v]) } else { (-hi[v], -lo[v]) };
                    lo_acc += a;
                    hi_acc += b;
                }
                let lo_acc = lo_acc.max(0.0);
                face_lo.push(lo_acc);
                face_hi.push(hi_acc.max(lo_acc));
                face_exact.push(false);
            }
        }
        let cap_pop: HashMap<(usize, usize), f64> = self
            .cap_comp_boundary
            .iter()
            .map(|(&k, b)| (k, b.iter().map(|&(e, iw)| net(e, iw)).sum::<f64>().max(0.0)))
            .collect();

        Evaluation { imp: self, intervals, face_lo, face_hi, face_exact, cap_pop }
    }
}

/// Certified population bounds for a region, from [`Evaluation::region_bounds`].
#[derive(Clone, Copy, Debug)]
pub struct RegionBounds {
    /// Certified lower bound on the region's population (finite, ≥ 0).
    pub lower: f64,
    /// Certified upper bound (may be `+∞` when some face has no cap or the
    /// fine faces do not tile the region).
    pub upper: f64,
    /// Faces folded exactly from healthy logs.
    pub exact_faces: usize,
    /// Fine faces tiling the region.
    pub faces: usize,
    /// Junction cells of faces whose lower bound carries information
    /// (exact, or certified strictly positive) — the resolution the lower
    /// bound can honestly claim.
    pub informative_cells: usize,
}

/// One propagated snapshot of the constraint system at a fixed time.
pub struct Evaluation<'a> {
    imp: &'a Imputer,
    /// Certified per-edge net-flow intervals, keyed by edge id.
    pub intervals: HashMap<usize, ImputedInterval>,
    face_lo: Vec<f64>,
    face_hi: Vec<f64>,
    face_exact: Vec<bool>,
    cap_pop: HashMap<(usize, usize), f64>,
}

impl Evaluation<'_> {
    /// The certified interval for one quarantined edge, if it has a variable.
    pub fn interval(&self, edge: usize) -> Option<ImputedInterval> {
        self.intervals.get(&edge).copied()
    }

    /// Certified population bounds for the region whose junction cells are
    /// exactly `interior`, by summing per-face bounds over the fine faces
    /// inside it.
    ///
    /// The lower bound is always sound: the selected faces are disjoint
    /// sub-regions, so their certified lowers add. The upper bound is only
    /// claimed when the selected faces *tile* the region (fine components
    /// partition junction cells, so a junction-count match proves it); a
    /// face whose interval fold stays vacuous falls back to the population
    /// of a containing cap component, minus the certified lowers of the
    /// other faces that component contains — grouped so a component is
    /// spent only once however many vacuous faces it covers.
    pub fn region_bounds(&self, interior: &[usize]) -> RegionBounds {
        let set: HashSet<usize> = interior.iter().copied().collect();
        let mut selected = Vec::new();
        let mut covered = 0usize;
        for (i, f) in self.imp.face_pops.iter().enumerate() {
            if !f.junctions.is_empty() && f.junctions.iter().all(|j| set.contains(j)) {
                selected.push(i);
                covered += f.junctions.len();
            }
        }
        let lower: f64 = selected.iter().map(|&i| self.face_lo[i]).sum();
        let exact_faces = selected.iter().filter(|&&i| self.face_exact[i]).count();
        let informative_cells = selected
            .iter()
            .filter(|&&i| self.face_exact[i] || self.face_lo[i] > 0.0)
            .map(|&i| self.imp.face_pops[i].junctions.len())
            .sum();

        let mut upper = 0.0f64;
        if covered != set.len() {
            upper = f64::INFINITY; // fine faces do not tile the region
        } else {
            let mut groups: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
            for &i in &selected {
                if self.face_hi[i].is_finite() {
                    upper += self.face_hi[i];
                    continue;
                }
                // Tightest containing cap by raw population.
                let best = self.imp.face_pops[i]
                    .caps
                    .iter()
                    .filter_map(|k| self.cap_pop.get(k).map(|&p| (*k, p)))
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                match best {
                    Some((k, _)) => groups.entry(k).or_default().push(i),
                    None => {
                        upper = f64::INFINITY;
                        break;
                    }
                }
            }
            if upper.is_finite() {
                for (k, members) in &groups {
                    let mut residual = self.cap_pop[k];
                    for &fi in &self.imp.cap_comp_faces[k] {
                        if !members.contains(&fi) {
                            residual -= self.face_lo[fi];
                        }
                    }
                    upper += residual.max(0.0);
                }
            }
        }
        RegionBounds {
            lower,
            upper: upper.max(lower),
            exact_faces,
            faces: selected.len(),
            informative_cells,
        }
    }

    /// Certified upper bound on the population of any sub-region of an
    /// all-healthy *enclosure* that is disjoint from the fine faces counted
    /// off: the enclosure's exact population minus the certified lowers of
    /// every contained face that shares no junction cell with `kept`.
    /// Returns the bound and the junction cells the certificate cannot
    /// distinguish from the kept region (its effective resolution).
    ///
    /// Sound because the kept sub-region and the subtracted faces are
    /// disjoint sub-regions of the enclosure, so their populations add to
    /// at most the enclosure's.
    pub fn enclosure_upper(
        &self,
        enclosure_pop: f64,
        enclosure_interior: &[usize],
        kept: &HashSet<usize>,
    ) -> (f64, usize) {
        let inside: HashSet<usize> = enclosure_interior.iter().copied().collect();
        let mut upper = enclosure_pop;
        let mut cells = enclosure_interior.len();
        for (i, f) in self.imp.face_pops.iter().enumerate() {
            if !f.junctions.is_empty()
                && f.junctions.iter().all(|j| inside.contains(j))
                && !f.junctions.iter().any(|j| kept.contains(j))
            {
                upper -= self.face_lo[i];
                // Only a face whose lower carries information sharpens the
                // certificate's resolution; a vacuous `pop ≥ 0` does not.
                if self.face_exact[i] || self.face_lo[i] > 0.0 {
                    cells = cells.saturating_sub(f.junctions.len());
                }
            }
        }
        (upper.max(0.0), cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::Connectivity;
    use crate::tracker::ingest;
    use stq_mobility::gen::delaunay_city;
    use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

    struct Fixture {
        sensing: SensingGraph,
        graph: SampledGraph,
        store: stq_forms::FormStore,
    }

    fn fixture() -> Fixture {
        let net = delaunay_city(130, 0.15, 6, 29).unwrap();
        let sensing = SensingGraph::new(net);
        let cfg =
            TrajectoryConfig { speed: 8.0, pause: 20.0, duration: 3_000.0, exit_probability: 0.3 };
        let mix = WorkloadMix { random_waypoint: 14, commuter: 9, transit: 7 };
        let trajs = generate_mix(sensing.road(), mix, cfg, 31);
        let cands = sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let graph = SampledGraph::from_sensors(&sensing, &faces, Connectivity::Triangulation);
        let store = ingest(&sensing, &trajs).store;
        Fixture { sensing, graph, store }
    }

    /// Monitored edges that sit on some audited face boundary.
    fn boundary_edges(f: &Fixture) -> Vec<usize> {
        let mut es: Vec<usize> = f
            .graph
            .audit_components(&f.sensing)
            .iter()
            .flat_map(|c| c.boundary.iter().map(|&(e, _)| e))
            .collect();
        es.sort_unstable();
        es.dedup();
        es
    }

    #[test]
    fn intervals_bracket_the_true_net_flow() {
        let f = fixture();
        // Quarantine a spread of boundary edges; the store keeps the *true*
        // data, so the certified intervals must contain the true net flows.
        let quarantined: Vec<usize> = boundary_edges(&f).into_iter().step_by(4).collect();
        assert!(quarantined.len() >= 3);
        let demoted = f.graph.demote_edges(&f.sensing, &quarantined);
        let imp = Imputer::new(&f.sensing, &f.graph, &[&demoted], &quarantined);
        assert_eq!(imp.edges().len(), quarantined.len());
        assert!(imp.num_constraints() > 0);
        for &t in &[500.0, 1_500.0, 3_000.0] {
            let intervals = imp.intervals_at(&f.store, t);
            for &q in &quarantined {
                let x = f.store.count_until(q, true, t) - f.store.count_until(q, false, t);
                let iv = intervals[&q];
                assert!(
                    iv.lo - 1e-9 <= x && x <= iv.hi + 1e-9,
                    "edge {q} t {t}: true {x} outside [{}, {}]",
                    iv.lo,
                    iv.hi
                );
            }
        }
    }

    #[test]
    fn some_intervals_are_finite_and_points_lie_inside() {
        let f = fixture();
        let quarantined: Vec<usize> = boundary_edges(&f).into_iter().step_by(5).take(6).collect();
        let demoted = f.graph.demote_edges(&f.sensing, &quarantined);
        let imp = Imputer::new(&f.sensing, &f.graph, &[&demoted], &quarantined);
        let intervals = imp.intervals_at(&f.store, 2_000.0);
        let finite = intervals.values().filter(|iv| iv.is_finite()).count();
        assert!(finite > 0, "no interval narrowed to finite bounds");
        for iv in intervals.values() {
            if iv.is_finite() {
                assert!(iv.lo <= iv.point() && iv.point() <= iv.hi);
            } else {
                assert_eq!(iv.point(), 0.0);
            }
        }
    }

    #[test]
    fn narrowing_tightens_chains_beyond_round_one() {
        let f = fixture();
        // Quarantine *adjacent* boundary edges of one face so no face pins
        // any variable alone: finiteness then requires propagation.
        let comps = f.graph.audit_components(&f.sensing);
        let spec = comps
            .iter()
            .filter(|c| c.boundary.len() >= 3)
            .max_by_key(|c| c.boundary.len())
            .expect("a face with a wide boundary");
        let quarantined: Vec<usize> = spec.boundary.iter().take(2).map(|&(e, _)| e).collect();
        let demoted = f.graph.demote_edges(&f.sensing, &quarantined);
        let imp = Imputer::new(&f.sensing, &f.graph, &[&demoted], &quarantined);
        let intervals = imp.intervals_at(&f.store, 2_500.0);
        for &q in &quarantined {
            let x = f.store.count_until(q, true, 2_500.0) - f.store.count_until(q, false, 2_500.0);
            let iv = intervals[&q];
            assert!(iv.lo - 1e-9 <= x && x <= iv.hi + 1e-9);
        }
    }
}
