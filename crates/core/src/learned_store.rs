//! Learned edge stores: regression models in place of explicit timestamp
//! logs (paper §4.8, Fig. 9).

use stq_forms::{CountSource, FormStore, Time};
use stq_learned::{Regressor, RegressorKind};

/// A [`CountSource`] backed by two constant-size regression models per
/// monitored edge (one per direction), fitted over the edge's timestamp CDF.
///
/// Lookup is model inference — `O(1)` for the polynomial families — and the
/// storage footprint is independent of how many crossings occurred, which
/// yields the paper's ~99.96 % storage reduction (Fig. 11e).
pub struct LearnedStore {
    kind: RegressorKind,
    /// Per edge: `None` when unmonitored, else the two directed models and
    /// their event totals (predictions clamp to `[0, total]`).
    models: Vec<Option<EdgeModels>>,
}

struct EdgeModels {
    fwd: Box<dyn Regressor>,
    bwd: Box<dyn Regressor>,
    fwd_total: f64,
    bwd_total: f64,
}

impl std::fmt::Debug for LearnedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnedStore")
            .field("kind", &self.kind)
            .field("edges", &self.models.iter().filter(|m| m.is_some()).count())
            .finish()
    }
}

impl LearnedStore {
    /// Fits models of `kind` over every edge of `exact` that `monitored`
    /// marks (or every edge when `monitored` is `None`).
    pub fn fit(exact: &FormStore, monitored: Option<&[bool]>, kind: RegressorKind) -> Self {
        let models = (0..exact.num_edges())
            .map(|e| {
                if monitored.map(|m| !m[e]).unwrap_or(false) {
                    return None;
                }
                let form = exact.form(e);
                Some(EdgeModels {
                    fwd: kind.fit(form.timestamps(true)),
                    bwd: kind.fit(form.timestamps(false)),
                    fwd_total: form.total(true) as f64,
                    bwd_total: form.total(false) as f64,
                })
            })
            .collect();
        LearnedStore { kind, models }
    }

    /// The model family in use.
    pub fn kind(&self) -> RegressorKind {
        self.kind
    }

    /// Number of modelled edges.
    pub fn num_modelled(&self) -> usize {
        self.models.iter().filter(|m| m.is_some()).count()
    }
}

impl CountSource for LearnedStore {
    fn count_until(&self, edge: usize, forward: bool, t: Time) -> f64 {
        match &self.models[edge] {
            Some(m) => {
                if forward {
                    m.fwd.predict(t).clamp(0.0, m.fwd_total)
                } else {
                    m.bwd.predict(t).clamp(0.0, m.bwd_total)
                }
            }
            None => 0.0,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.models
            .iter()
            .flatten()
            // Two models + two u32-ish totals per edge.
            .map(|m| m.fwd.size_bytes() + m.bwd.size_bytes() + 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_forms::{snapshot_count, BoundaryEdge};

    fn filled_store() -> FormStore {
        let mut s = FormStore::new(4);
        // Edge 0: steady inflow; edge 1: outflow; edges 2-3 sparse.
        let mut t = 0.0;
        for i in 0..300 {
            t += 1.0 + 0.3 * ((i as f64) * 0.05).sin();
            s.record(0, true, t);
            if i % 3 == 0 {
                s.record(1, false, t);
            }
        }
        s.record(2, true, 10.0);
        s
    }

    #[test]
    fn learned_counts_track_exact() {
        let exact = filled_store();
        for kind in RegressorKind::standard_set() {
            let learned = LearnedStore::fit(&exact, None, kind);
            for &t in &[50.0, 150.0, 320.0] {
                let e = exact.count_until(0, true, t);
                let l = learned.count_until(0, true, t);
                assert!((e - l).abs() <= 12.0, "{kind:?} at t={t}: exact {e} learned {l}");
            }
        }
    }

    #[test]
    fn storage_reduction_is_dramatic() {
        let exact = filled_store();
        let learned = LearnedStore::fit(&exact, None, RegressorKind::Linear);
        assert!(learned.storage_bytes() * 5 < exact.storage_bytes());
    }

    #[test]
    fn unmonitored_edges_skipped() {
        let exact = filled_store();
        let monitored = vec![true, false, true, false];
        let learned = LearnedStore::fit(&exact, Some(&monitored), RegressorKind::Linear);
        assert_eq!(learned.num_modelled(), 2);
        assert_eq!(learned.count_until(1, false, 1e9), 0.0);
        assert!(learned.count_until(0, true, 1e9) > 0.0);
    }

    #[test]
    fn clamped_to_totals() {
        let exact = filled_store();
        for kind in RegressorKind::standard_set() {
            let learned = LearnedStore::fit(&exact, None, kind);
            assert!(learned.count_until(0, true, 1e12) <= 300.0);
            assert!(learned.count_until(0, true, -1e12) >= 0.0);
        }
    }

    #[test]
    fn boundary_integration_with_learned_store() {
        let exact = filled_store();
        let learned = LearnedStore::fit(&exact, None, RegressorKind::PiecewiseLinear(8));
        let boundary = [BoundaryEdge::new(0, true), BoundaryEdge::new(1, true)];
        let t = 200.0;
        let e = snapshot_count(&exact, &boundary, t);
        let l = snapshot_count(&learned, &boundary, t);
        assert!((e - l).abs() <= 10.0, "exact {e} learned {l}");
    }
}
