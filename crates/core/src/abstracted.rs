//! The simplified sampled graph (paper §4.5, Fig. 6c).
//!
//! After shortest-path materialization, most vertices of `G̃` are *virtual*
//! relay nodes of degree 2 ("they do not have to be communication sensors").
//! The paper draws the simplified graph by contracting those chains. This
//! module computes that abstraction: retained nodes are the communication
//! sensors plus every branch point (degree ≠ 2), and each abstract edge is
//! the chain of monitored sensing links between two retained nodes, with its
//! hop and Euclidean lengths — the quantities the §4.9 cost model and the
//! dispatch simulator consume.

use std::collections::HashMap;

use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_planar::embedding::{EdgeId, FaceId};

/// One contracted chain of monitored links between two retained nodes.
#[derive(Clone, Debug)]
pub struct AbstractChain {
    /// Retained endpoints (dual vertices = sensor faces). Equal for pure
    /// cycles that touch only one retained node — or none, in which case an
    /// arbitrary cycle vertex is promoted.
    pub endpoints: (FaceId, FaceId),
    /// The monitored sensing links forming the chain, in walk order.
    pub edges: Vec<EdgeId>,
    /// Euclidean length (sum of sensor-to-sensor distances).
    pub length: f64,
}

/// The simplified topology of a sampled graph.
#[derive(Clone, Debug)]
pub struct AbstractTopology {
    /// Retained nodes: communication sensors ∪ branch points.
    pub nodes: Vec<FaceId>,
    /// Contracted chains (each monitored link appears in exactly one).
    pub chains: Vec<AbstractChain>,
}

impl AbstractTopology {
    /// Builds the simplified topology of `sampled` over `sensing`.
    pub fn build(sensing: &SensingGraph, sampled: &SampledGraph) -> Self {
        // Adjacency of the monitored dual subgraph.
        let mut adj: HashMap<FaceId, Vec<(FaceId, EdgeId)>> = HashMap::new();
        for (e, &m) in sampled.monitored().iter().enumerate() {
            if !m {
                continue;
            }
            let (a, b) = sensing.dual().edge_faces[e];
            if a == b {
                continue; // bridge loops carry no topology
            }
            adj.entry(a).or_default().push((b, e));
            adj.entry(b).or_default().push((a, e));
        }

        // Retained = communication sensors + branch/terminal points.
        let mut retained: std::collections::HashSet<FaceId> =
            sampled.sensors().iter().copied().collect();
        for (&v, nbrs) in &adj {
            if nbrs.len() != 2 {
                retained.insert(v);
            }
        }

        let dist = |a: FaceId, b: FaceId| -> f64 {
            match (sensing.sensor_pos(a), sensing.sensor_pos(b)) {
                (Some(pa), Some(pb)) => pa.dist(pb),
                _ => 0.0,
            }
        };

        let mut used: std::collections::HashSet<EdgeId> = std::collections::HashSet::new();
        let mut chains = Vec::new();

        // Walk chains outward from every retained node.
        for &start in &retained {
            let Some(nbrs) = adj.get(&start) else { continue };
            for &(mut cur, mut via) in nbrs {
                if used.contains(&via) {
                    continue;
                }
                let mut edges = vec![via];
                used.insert(via);
                let mut prev = start;
                let mut length = dist(prev, cur);
                while !retained.contains(&cur) {
                    // Degree-2 interior node: continue through the other link.
                    let next = adj[&cur]
                        .iter()
                        .find(|&&(_, e)| e != via)
                        .copied()
                        .expect("interior chain node has exactly two links");
                    via = next.1;
                    used.insert(via);
                    length += dist(cur, next.0);
                    prev = cur;
                    let _ = prev;
                    cur = next.0;
                    edges.push(via);
                }
                chains.push(AbstractChain { endpoints: (start, cur), edges, length });
            }
        }

        // Pure degree-2 cycles untouched by retained nodes: promote one
        // vertex per cycle and walk it.
        for (&v, nbrs) in &adj {
            if nbrs.len() != 2 || nbrs.iter().all(|&(_, e)| used.contains(&e)) {
                continue;
            }
            retained.insert(v);
            let (mut cur, mut via) = nbrs[0];
            let mut edges = vec![via];
            used.insert(via);
            let mut length = dist(v, cur);
            while cur != v {
                let next = adj[&cur]
                    .iter()
                    .find(|&&(_, e)| e != via)
                    .copied()
                    .expect("cycle node has two links");
                via = next.1;
                used.insert(via);
                length += dist(cur, next.0);
                cur = next.0;
                edges.push(via);
            }
            chains.push(AbstractChain { endpoints: (v, v), edges, length });
        }

        let mut nodes: Vec<FaceId> = retained.into_iter().collect();
        nodes.sort_unstable();
        AbstractTopology { nodes, chains }
    }

    /// Total monitored links across all chains.
    pub fn total_edges(&self) -> usize {
        self.chains.iter().map(|c| c.edges.len()).sum()
    }

    /// Mean chain hop length — the relay overhead per abstract edge
    /// (≈ `ℓ_G` of §4.9 for shortest-path materialization).
    pub fn mean_chain_hops(&self) -> f64 {
        if self.chains.is_empty() {
            return 0.0;
        }
        self.total_edges() as f64 / self.chains.len() as f64
    }

    /// Compression ratio: abstract edges per monitored link (≤ 1; smaller is
    /// more simplification).
    pub fn compression(&self) -> f64 {
        let total = self.total_edges();
        if total == 0 {
            0.0
        } else {
            self.chains.len() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::Connectivity;
    use crate::scenario::{Scenario, ScenarioConfig};
    use stq_mobility::trajectory::WorkloadMix;

    fn setup(frac: f64) -> (Scenario, SampledGraph) {
        let s = Scenario::build(ScenarioConfig {
            junctions: 250,
            mix: WorkloadMix { random_waypoint: 3, commuter: 3, transit: 2 },
            seed: 5,
            ..Default::default()
        });
        let cands = s.sensing.sensor_candidates();
        let m = ((cands.len() as f64 * frac) as usize).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 7);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);
        (s, g)
    }

    #[test]
    fn chains_partition_monitored_edges() {
        let (s, g) = setup(0.08);
        let topo = AbstractTopology::build(&s.sensing, &g);
        let mut seen = std::collections::HashSet::new();
        for c in &topo.chains {
            for &e in &c.edges {
                assert!(seen.insert(e), "edge {e} appears in two chains");
                assert!(g.monitored()[e]);
            }
        }
        // Every non-loop monitored edge is covered.
        let loops: usize = g
            .monitored()
            .iter()
            .enumerate()
            .filter(|&(e, &m)| {
                m && {
                    let (a, b) = s.sensing.dual().edge_faces[e];
                    a == b
                }
            })
            .count();
        assert_eq!(seen.len() + loops, g.num_monitored_edges());
    }

    #[test]
    fn endpoints_are_retained_nodes() {
        let (s, g) = setup(0.08);
        let topo = AbstractTopology::build(&s.sensing, &g);
        let nodes: std::collections::HashSet<usize> = topo.nodes.iter().copied().collect();
        for c in &topo.chains {
            assert!(nodes.contains(&c.endpoints.0));
            assert!(nodes.contains(&c.endpoints.1));
            assert!(!c.edges.is_empty());
            assert!(c.length >= 0.0);
        }
    }

    #[test]
    fn simplification_compresses() {
        let (s, g) = setup(0.06);
        let topo = AbstractTopology::build(&s.sensing, &g);
        // Sparse sampled graphs have long relay chains: clearly fewer
        // abstract edges than monitored links.
        assert!(
            topo.compression() < 0.8,
            "expected compression, got {:.2} ({} chains over {} links)",
            topo.compression(),
            topo.chains.len(),
            topo.total_edges()
        );
        assert!(topo.mean_chain_hops() > 1.2);
        // All communication sensors retained.
        let nodes: std::collections::HashSet<usize> = topo.nodes.iter().copied().collect();
        for &sensor in g.sensors() {
            // Isolated sensors (no monitored incident link) may be absent.
            let incident = g.monitored().iter().enumerate().any(|(e, &m)| {
                m && {
                    let (a, b) = s.sensing.dual().edge_faces[e];
                    a == sensor || b == sensor
                }
            });
            if incident {
                assert!(nodes.contains(&sensor), "sensor {sensor} dropped");
            }
        }
    }

    #[test]
    fn denser_graphs_compress_less() {
        let (s1, g1) = setup(0.05);
        let t1 = AbstractTopology::build(&s1.sensing, &g1);
        let (s2, g2) = setup(0.5);
        let t2 = AbstractTopology::build(&s2.sensing, &g2);
        assert!(
            t2.compression() > t1.compression(),
            "dense {:.2} should exceed sparse {:.2}",
            t2.compression(),
            t1.compression()
        );
    }

    #[test]
    fn empty_sampled_graph() {
        let s = Scenario::build(ScenarioConfig {
            junctions: 80,
            mix: WorkloadMix { random_waypoint: 1, commuter: 0, transit: 0 },
            seed: 1,
            ..Default::default()
        });
        let g = SampledGraph::from_sensors(&s.sensing, &[], Connectivity::Triangulation);
        let topo = AbstractTopology::build(&s.sensing, &g);
        assert!(topo.chains.is_empty());
        assert_eq!(topo.total_edges(), 0);
        assert_eq!(topo.mean_chain_hops(), 0.0);
    }
}
