//! The query engine: compile a region once, execute it many times.
//!
//! Every answer path in the framework evaluates a 1-form along a region's
//! boundary chain (§4.7) — and before this layer existed, each of them
//! re-derived that chain per query: resolve the region against the sampled
//! graph, walk the boundary, then separately re-walk it for the sensor
//! count. The engine splits that work the way distributed spatial systems
//! do:
//!
//! - **Plan** ([`QueryPlan::compile`]): resolve the region (§4.6), walk the
//!   boundary *once* — collecting the deduplicated inward-oriented chain,
//!   the interior-cell set, and the distinct incident sensors in the same
//!   pass — and freeze the result. A plan is independent of the query kind
//!   and of the count store: the same plan answers snapshot, transient and
//!   static queries against exact, learned, columnar or private stores.
//! - **Cache** ([`QueryEngine`]): plans are memoized in a bounded LRU keyed
//!   by a fingerprint of the region's junction set and resolution side.
//!   Repeated and batched queries over the same region skip resolution and
//!   the boundary walk entirely.
//! - **Execute** ([`QueryPlan::execute`], [`QueryEngine::execute_batch`]):
//!   fold the plan's boundary against a [`CountSource`]. The fold visits
//!   edges in the plan's (deterministic) chain order, so results are
//!   bit-identical to the scalar `evaluate` path; batches fan out across
//!   worker threads, one plan per task.
//!
//! ## Cache invalidation
//!
//! A plan bakes in the sampled graph's region resolution, so it is valid
//! exactly as long as that graph is. [`SampledGraph`] is immutable —
//! quarantine ([`demote_edges`](SampledGraph::demote_edges)), failover
//! rerouting ([`reroute_around`](SampledGraph::reroute_around)) and repair
//! all produce *new* graphs — therefore any holder that swaps graphs must
//! call [`QueryEngine::invalidate`] at the swap. The serving runtime does
//! this on supervisor-driven recovery (which may extend quarantine); the
//! offline paths compile against a single graph per call and need no
//! invalidation. Demotion only ever shrinks the monitored edge set, so a
//! *stale* plan is still sound in the bracketing sense (its boundary is a
//! superset chain of a coarser resolution) — invalidation is about serving
//! the freshest resolution, not about correctness of bounds.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::query::{evaluate, Approximation, QueryKind, QueryOutcome, QueryRegion};
use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_forms::{BoundaryEdge, CountSource};
use stq_planar::embedding::VertexId;

/// Stable identity of a compiled plan: the region fingerprint that keys the
/// engine's cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanId(pub u64);

/// A compiled, reusable query plan: everything about a region that does not
/// depend on the query kind or the count store.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Cache identity (fingerprint of junction set + resolution side).
    pub id: PlanId,
    /// The resolved interior cells, sorted (empty on a miss).
    pub interior: Vec<VertexId>,
    /// Deduplicated boundary chain, oriented inward, in deterministic
    /// (sorted-vertex walk) order — the fold order of every execution.
    pub boundary: Vec<BoundaryEdge>,
    /// Distinct sensors incident to the boundary — the nodes a
    /// perimeter-based evaluation contacts.
    pub nodes_accessed: usize,
    /// The sampled graph could not resolve the region at all (§5.5).
    pub miss: bool,
}

/// FNV-1a over the sorted junction ids plus a resolution tag.
fn fingerprint(junctions: &[VertexId], tag: u8) -> PlanId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(tag);
    for &j in junctions {
        for b in (j as u64).to_le_bytes() {
            eat(b);
        }
    }
    PlanId(h)
}

fn sorted_junctions(region: &QueryRegion) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = region.junctions.iter().copied().collect();
    v.sort_unstable();
    v
}

impl QueryPlan {
    /// Compiles a plan on a sampled graph: resolve the region to its
    /// `approx` side, then derive boundary chain + sensor count in one
    /// pass.
    pub fn compile(
        sensing: &SensingGraph,
        sampled: &SampledGraph,
        region: &QueryRegion,
        approx: Approximation,
    ) -> QueryPlan {
        let key = sorted_junctions(region);
        let tag = match approx {
            Approximation::Lower => 0,
            Approximation::Upper => 1,
        };
        let id = fingerprint(&key, tag);
        let covered = match approx {
            Approximation::Lower => sampled.resolve_lower(&region.junctions),
            Approximation::Upper => sampled.resolve_upper(&region.junctions),
        };
        if covered.is_empty() {
            return QueryPlan {
                id,
                interior: Vec::new(),
                boundary: Vec::new(),
                nodes_accessed: 0,
                miss: true,
            };
        }
        let (boundary, nodes_accessed) =
            sensing.boundary_with_sensors(&covered, Some(sampled.monitored()));
        let mut interior: Vec<VertexId> = covered.into_iter().collect();
        interior.sort_unstable();
        QueryPlan { id, interior, boundary, nodes_accessed, miss: false }
    }

    /// Compiles the ground-truth plan on the *unsampled* graph: the query's
    /// own junction set, every edge eligible. Never a miss (an empty region
    /// integrates to zero, matching `ground_truth` semantics).
    pub fn compile_exact(sensing: &SensingGraph, region: &QueryRegion) -> QueryPlan {
        let interior = sorted_junctions(region);
        let id = fingerprint(&interior, 2);
        let (boundary, nodes_accessed) = sensing.boundary_with_sensors(&region.junctions, None);
        QueryPlan { id, interior, boundary, nodes_accessed, miss: false }
    }

    /// Number of junction cells the plan's resolution covers.
    pub fn covered_cells(&self) -> usize {
        self.interior.len()
    }

    /// Estimated serving cost of this plan in abstract admission units:
    /// the boundary edges a full-precision execution must collect (the
    /// perimeter work of §4.9) plus one unit per shard the fan-out can
    /// contact (the message overhead). Relative pricing for an admission
    /// gate, not a latency prediction.
    pub fn cost_units(&self, num_shards: usize) -> f64 {
        let edges = self.boundary.len() as f64;
        let fanout = (num_shards.max(1) as f64).min(edges.max(1.0));
        edges + fanout
    }

    /// The boundary positions a precision-shedding stride keeps: every
    /// `stride`-th edge of the chain, tagged with its position so a partial
    /// fold can still widen the skipped positions soundly. `stride == 1`
    /// keeps the full boundary; `stride == 0` keeps nothing (a fully shed
    /// answer built from worst-case totals alone). Skipped edges must be
    /// treated exactly like silent shards — worst-case interval, reduced
    /// coverage — which preserves bracket soundness at any stride.
    pub fn shed_boundary(&self, stride: usize) -> Vec<(usize, BoundaryEdge)> {
        if stride == 0 {
            return Vec::new();
        }
        self.boundary.iter().enumerate().step_by(stride).map(|(i, &be)| (i, be)).collect()
    }

    /// Executes one query kind against `store`, folding the boundary in
    /// plan order — bit-identical to the scalar
    /// [`crate::query::evaluate`] fold over the same chain.
    pub fn execute<S: CountSource + ?Sized>(&self, store: &S, kind: QueryKind) -> QueryOutcome {
        if self.miss {
            return QueryOutcome {
                value: 0.0,
                miss: true,
                nodes_accessed: 0,
                edges_accessed: 0,
                covered_cells: 0,
            };
        }
        QueryOutcome {
            value: evaluate(store, &self.boundary, kind),
            miss: false,
            nodes_accessed: self.nodes_accessed,
            edges_accessed: self.boundary.len(),
            covered_cells: self.interior.len(),
        }
    }
}

/// Point-in-time cache accounting of a [`QueryEngine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans compiled because no (valid) cached entry existed.
    pub misses: u64,
    /// Wholesale cache clears (graph swaps).
    pub invalidations: u64,
    /// Entries currently cached.
    pub cached: usize,
}

struct CacheEntry {
    plan: Arc<QueryPlan>,
    /// Sorted junction ids — verified on every hit so a fingerprint
    /// collision degrades to a recompile, never to a wrong plan.
    key: Vec<VertexId>,
    last_used: u64,
}

#[derive(Default)]
struct PlanCache {
    map: HashMap<u64, CacheEntry>,
    tick: u64,
}

/// A bounded plan cache plus a batched parallel executor.
///
/// One engine serves one logical deployment (a `sensing` + `sampled` pair);
/// callers that swap the sampled graph — quarantine, reroute, recovery —
/// must [`invalidate`](Self::invalidate) at the swap (see the module docs
/// for why stale plans are still *sound*, just stale).
pub struct QueryEngine {
    capacity: usize,
    cache: Mutex<PlanCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("QueryEngine").field("capacity", &self.capacity).field("stats", &s).finish()
    }
}

impl QueryEngine {
    /// An engine caching up to `capacity` plans (0 disables caching: every
    /// [`plan`](Self::plan) call compiles).
    pub fn new(capacity: usize) -> Self {
        QueryEngine {
            capacity,
            cache: Mutex::new(PlanCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `region`/`approx`, compiling on a cache miss.
    /// The flag is `true` when the plan came from the cache.
    pub fn plan(
        &self,
        sensing: &SensingGraph,
        sampled: &SampledGraph,
        region: &QueryRegion,
        approx: Approximation,
    ) -> (Arc<QueryPlan>, bool) {
        let key = sorted_junctions(region);
        let tag = match approx {
            Approximation::Lower => 0,
            Approximation::Upper => 1,
        };
        let id = fingerprint(&key, tag);
        if self.capacity > 0 {
            let mut cache = self.cache.lock().expect("plan cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.map.get_mut(&id.0) {
                if entry.key == key {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(&entry.plan), true);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(QueryPlan::compile(sensing, sampled, region, approx));
        if self.capacity > 0 {
            let mut cache = self.cache.lock().expect("plan cache poisoned");
            cache.tick += 1;
            let tick = cache.tick;
            if cache.map.len() >= self.capacity && !cache.map.contains_key(&id.0) {
                // Evict the least-recently-used entry (linear scan: the
                // cache is small and bounded, and this path is already a
                // compile).
                if let Some(&lru) =
                    cache.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k)
                {
                    cache.map.remove(&lru);
                }
            }
            cache.map.insert(id.0, CacheEntry { plan: Arc::clone(&plan), key, last_used: tick });
        }
        (plan, false)
    }

    /// The cached plan for `id`, if it is still resident.
    pub fn cached(&self, id: PlanId) -> Option<Arc<QueryPlan>> {
        let mut cache = self.cache.lock().expect("plan cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        cache.map.get_mut(&id.0).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.plan)
        })
    }

    /// Drops every cached plan. Call when the sampled graph this engine
    /// compiles against is replaced (quarantine demotion, failover reroute,
    /// crash recovery, shard-map migration).
    pub fn invalidate(&self) {
        self.cache.lock().expect("plan cache poisoned").map.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotone invalidation generation: bumped once per
    /// [`invalidate`](Self::invalidate). Topology-changing protocols (crash recovery,
    /// shard-map migration) use it as a cheap witness that the cache was
    /// flushed atomically with their own epoch bump — a reader comparing
    /// generations around an epoch read can tell whether a cached plan
    /// could predate the change.
    pub fn invalidation_generation(&self) -> u64 {
        self.invalidations.load(Ordering::Acquire)
    }

    /// Cache accounting so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            cached: self.cache.lock().expect("plan cache poisoned").map.len(),
        }
    }

    /// Executes a batch in parallel across plans (scoped worker threads,
    /// work-stealing by index). Output order matches input order, and each
    /// outcome is bit-identical to `batch[i].0.execute(store, batch[i].1)`
    /// run alone: parallelism is across queries, never inside one fold.
    pub fn execute_batch<S: CountSource + Sync + ?Sized>(
        &self,
        store: &S,
        batch: &[(Arc<QueryPlan>, QueryKind)],
    ) -> Vec<QueryOutcome> {
        let n = batch.len();
        let threads =
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
        if threads <= 1 {
            return batch.iter().map(|(p, k)| p.execute(store, *k)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<QueryOutcome>> = vec![None; n];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (plan, kind) = &batch[i];
                            mine.push((i, plan.execute(store, *kind)));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (i, out) in h.join().expect("batch worker panicked") {
                    results[i] = Some(out);
                }
            }
        });
        results.into_iter().map(|o| o.expect("every index executed")).collect()
    }

    /// [`execute_batch`](Self::execute_batch) addressed by [`PlanId`]:
    /// resolves each id against the cache first. `None` marks ids whose
    /// plan was evicted or never compiled — the caller re-plans those.
    pub fn execute_ids<S: CountSource + Sync + ?Sized>(
        &self,
        store: &S,
        batch: &[(PlanId, QueryKind)],
    ) -> Vec<Option<QueryOutcome>> {
        let resolved: Vec<Option<(Arc<QueryPlan>, QueryKind)>> =
            batch.iter().map(|&(id, kind)| self.cached(id).map(|p| (p, kind))).collect();
        let live: Vec<(Arc<QueryPlan>, QueryKind)> = resolved.iter().flatten().cloned().collect();
        let mut outcomes = self.execute_batch(store, &live).into_iter();
        resolved.into_iter().map(|slot| slot.map(|_| outcomes.next().expect("outcome"))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{answer, ground_truth};
    use crate::sampled::Connectivity;
    use crate::scenario::{Scenario, ScenarioConfig};
    use stq_mobility::trajectory::WorkloadMix;

    fn fixture() -> (Scenario, SampledGraph) {
        let s = Scenario::build(ScenarioConfig {
            junctions: 140,
            mix: WorkloadMix { random_waypoint: 10, commuter: 6, transit: 4 },
            seed: 23,
            ..Default::default()
        });
        let cands = s.sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);
        (s, g)
    }

    #[test]
    fn plan_execute_matches_answer_bitwise() {
        let (s, g) = fixture();
        for (q, t0, t1) in s.make_queries(6, 0.12, 2_000.0, 7) {
            for kind in
                [QueryKind::Snapshot(t0), QueryKind::Transient(t0, t1), QueryKind::Static(t0, t1)]
            {
                for approx in [Approximation::Lower, Approximation::Upper] {
                    let via_answer = answer(&s.sensing, &g, &s.tracked.store, &q, kind, approx);
                    let plan = QueryPlan::compile(&s.sensing, &g, &q, approx);
                    let via_plan = plan.execute(&s.tracked.store, kind);
                    assert_eq!(via_plan.value.to_bits(), via_answer.value.to_bits());
                    assert_eq!(via_plan.miss, via_answer.miss);
                    assert_eq!(via_plan.nodes_accessed, via_answer.nodes_accessed);
                    assert_eq!(via_plan.edges_accessed, via_answer.edges_accessed);
                    assert_eq!(via_plan.covered_cells, via_answer.covered_cells);
                }
            }
        }
    }

    #[test]
    fn shed_boundary_strides_partition_soundly() {
        let (s, g) = fixture();
        for (q, _, _) in s.make_queries(4, 0.15, 2_000.0, 11) {
            let plan = QueryPlan::compile(&s.sensing, &g, &q, Approximation::Lower);
            if plan.miss {
                continue;
            }
            let full = plan.shed_boundary(1);
            assert_eq!(full.len(), plan.boundary.len(), "stride 1 keeps everything");
            assert!(full.iter().enumerate().all(|(i, &(idx, _))| idx == i));
            assert!(plan.shed_boundary(0).is_empty(), "stride 0 sheds everything");
            for stride in [2usize, 4] {
                let kept = plan.shed_boundary(stride);
                assert_eq!(kept.len(), plan.boundary.len().div_ceil(stride));
                for &(idx, be) in &kept {
                    assert_eq!(idx % stride, 0);
                    assert_eq!(be.edge, plan.boundary[idx].edge);
                }
            }
            // Coarser strides never cost more admission units than finer ones.
            assert!(plan.cost_units(4) >= plan.boundary.len() as f64);
            assert!(plan.cost_units(1) <= plan.cost_units(8));
        }
    }

    #[test]
    fn exact_plan_matches_ground_truth() {
        let (s, _) = fixture();
        for (q, t0, _) in s.make_queries(4, 0.15, 2_000.0, 9) {
            let kind = QueryKind::Snapshot(t0);
            let plan = QueryPlan::compile_exact(&s.sensing, &q);
            assert_eq!(
                plan.execute(&s.tracked.store, kind).value.to_bits(),
                ground_truth(&s.sensing, &s.tracked.store, &q, kind).to_bits()
            );
        }
    }

    #[test]
    fn cache_hits_return_the_same_plan() {
        let (s, g) = fixture();
        let engine = QueryEngine::new(8);
        let (q, _, _) = s.make_queries(1, 0.12, 2_000.0, 7).remove(0);
        let (p1, hit1) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
        let (p2, hit2) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
        assert!(!hit1);
        assert!(hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        // Upper resolution is a distinct plan.
        let (p3, hit3) = engine.plan(&s.sensing, &g, &q, Approximation::Upper);
        assert!(!hit3);
        assert_ne!(p3.id, p1.id);
        let st = engine.stats();
        assert_eq!((st.hits, st.misses, st.cached), (1, 2, 2));
    }

    #[test]
    fn lru_evicts_oldest_and_capacity_zero_disables() {
        let (s, g) = fixture();
        let engine = QueryEngine::new(2);
        let qs = s.make_queries(3, 0.08, 2_000.0, 3);
        let ids: Vec<PlanId> = qs
            .iter()
            .map(|(q, _, _)| engine.plan(&s.sensing, &g, q, Approximation::Lower).0.id)
            .collect();
        // First plan was evicted by the third insert.
        assert!(engine.cached(ids[0]).is_none());
        assert!(engine.cached(ids[2]).is_some());
        assert_eq!(engine.stats().cached, 2);

        let off = QueryEngine::new(0);
        let (q, _, _) = &qs[0];
        let (_, h1) = off.plan(&s.sensing, &g, q, Approximation::Lower);
        let (_, h2) = off.plan(&s.sensing, &g, q, Approximation::Lower);
        assert!(!h1 && !h2, "capacity 0 never caches");
        assert_eq!(off.stats().cached, 0);
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let (s, g) = fixture();
        let engine = QueryEngine::new(32);
        let mut batch = Vec::new();
        for (q, t0, t1) in s.make_queries(5, 0.12, 2_000.0, 11) {
            let (plan, _) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
            batch.push((Arc::clone(&plan), QueryKind::Snapshot(t0)));
            batch.push((plan, QueryKind::Transient(t0, t1)));
        }
        let parallel = engine.execute_batch(&s.tracked.store, &batch);
        for (i, (plan, kind)) in batch.iter().enumerate() {
            let solo = plan.execute(&s.tracked.store, *kind);
            assert_eq!(parallel[i].value.to_bits(), solo.value.to_bits());
            assert_eq!(parallel[i].miss, solo.miss);
        }
    }

    #[test]
    fn execute_ids_resolves_cache_and_reports_evictions() {
        let (s, g) = fixture();
        let engine = QueryEngine::new(16);
        let (q, t0, _) = s.make_queries(1, 0.12, 2_000.0, 13).remove(0);
        let (plan, _) = engine.plan(&s.sensing, &g, &q, Approximation::Lower);
        let out = engine.execute_ids(
            &s.tracked.store,
            &[(plan.id, QueryKind::Snapshot(t0)), (PlanId(0xdead_beef), QueryKind::Snapshot(t0))],
        );
        assert!(out[0].is_some());
        assert!(out[1].is_none(), "unknown ids surface as None");
        engine.invalidate();
        let out = engine.execute_ids(&s.tracked.store, &[(plan.id, QueryKind::Snapshot(t0))]);
        assert!(out[0].is_none(), "invalidation drops every cached plan");
        assert_eq!(engine.stats().invalidations, 1);
    }
}
