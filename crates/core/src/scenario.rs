//! End-to-end scenario builder shared by examples, integration tests and the
//! experiment harness: city → workload → tracking → queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::query::QueryRegion;
use crate::sensing::SensingGraph;
use crate::tracker::{ingest, Tracked};
use stq_geom::{Point, Rect};
use stq_mobility::gen::delaunay_city;
use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};
use stq_mobility::Trajectory;

/// Parameters for a synthetic evaluation scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Junction count of the Delaunay city.
    pub junctions: usize,
    /// Fraction of triangulation edges removed.
    pub drop: f64,
    /// Gates to the outside world.
    pub ramps: usize,
    /// Workload composition.
    pub mix: WorkloadMix,
    /// Trajectory parameters.
    pub trajectory: TrajectoryConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            junctions: 600,
            drop: 0.18,
            ramps: 10,
            mix: WorkloadMix { random_waypoint: 60, commuter: 60, transit: 30 },
            trajectory: TrajectoryConfig {
                speed: 12.0,
                pause: 40.0,
                duration: 10_000.0,
                // Low exit pressure keeps a dense steady-state population,
                // like the multi-year T-Drive/Geolife fleets.
                exit_probability: 0.05,
            },
            seed: 2024,
        }
    }
}

/// A fully built scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The sensing graph built over the generated city.
    pub sensing: SensingGraph,
    /// The generated workload (kept for oracles and re-ingestion).
    pub trajectories: Vec<Trajectory>,
    /// The ingested exact store plus the test oracle.
    pub tracked: Tracked,
    /// The parameters the scenario was built from.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Builds the city, generates the workload, and ingests it.
    pub fn build(config: ScenarioConfig) -> Self {
        let road = delaunay_city(config.junctions, config.drop, config.ramps, config.seed)
            .expect("scenario city generation");
        let sensing = SensingGraph::new(road);
        let trajectories =
            generate_mix(sensing.road(), config.mix, config.trajectory, config.seed ^ 0x5eed);
        let tracked = ingest(&sensing, &trajectories);
        Scenario { sensing, trajectories, tracked, config }
    }

    /// Generates `n` rectangular query regions whose area is `area_frac` of
    /// the total sensing area, uniformly placed, with random temporal
    /// windows of length `window` inside the simulation horizon (§5.1.5).
    /// Regions that cover no junction are re-drawn (bounded retries).
    pub fn make_queries(
        &self,
        n: usize,
        area_frac: f64,
        window: f64,
        seed: u64,
    ) -> Vec<(QueryRegion, f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let bb = self.sensing.road().bbox();
        let total_area = bb.area();
        let side = (total_area * area_frac).sqrt();
        let duration = self.config.trajectory.duration;
        let window = window.min(duration * 0.9);
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 50 {
            attempts += 1;
            let cx = rng.gen_range(bb.min.x + side * 0.5..=bb.max.x - side * 0.5);
            let cy = rng.gen_range(bb.min.y + side * 0.5..=bb.max.y - side * 0.5);
            let rect = Rect::centered(Point::new(cx, cy), side, side);
            let q = QueryRegion::from_rect(&self.sensing, rect);
            if q.is_empty() {
                continue;
            }
            let t0 = rng.gen_range(duration * 0.05..=duration * 0.95 - window);
            out.push((q, t0, t0 + window));
        }
        out
    }

    /// Historical query regions (junction sets) for the submodular method —
    /// the "100 query regions chosen uniformly" of §5.1.5.
    pub fn historical_regions(&self, n: usize, area_frac: f64, seed: u64) -> Vec<Vec<usize>> {
        self.make_queries(n, area_frac, 0.0, seed)
            .into_iter()
            .map(|(q, _, _)| {
                let mut v: Vec<usize> = q.junctions.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::build(ScenarioConfig {
            junctions: 100,
            mix: WorkloadMix { random_waypoint: 8, commuter: 5, transit: 4 },
            trajectory: TrajectoryConfig {
                speed: 10.0,
                pause: 20.0,
                duration: 2_000.0,
                exit_probability: 0.3,
            },
            ..Default::default()
        })
    }

    #[test]
    fn scenario_builds_consistently() {
        let s = tiny();
        assert_eq!(s.trajectories.len(), 17);
        assert!(s.tracked.num_crossings > 0);
        assert!(s.sensing.num_sensors() > 10);
    }

    #[test]
    fn queries_cover_junctions_and_windows() {
        let s = tiny();
        let qs = s.make_queries(20, 0.05, 500.0, 1);
        assert_eq!(qs.len(), 20);
        for (q, t0, t1) in &qs {
            assert!(!q.is_empty());
            assert!(*t0 < *t1);
            assert!(*t1 <= s.config.trajectory.duration);
        }
    }

    #[test]
    fn historical_regions_nonempty_sorted() {
        let s = tiny();
        let hist = s.historical_regions(10, 0.08, 3);
        assert_eq!(hist.len(), 10);
        for h in &hist {
            assert!(!h.is_empty());
            assert!(h.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
