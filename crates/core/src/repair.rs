//! Quarantine-and-repair: turning audit verdicts into sound query answers.
//!
//! The integrity auditor ([`stq_forms::audit()`]) classifies each monitored
//! edge `Healthy`, `Suspect`, or `Dead`. This layer decides what to *do*
//! about it, in three escalating steps:
//!
//! 1. **Exact repair.** Two corruption modes are information-preserving and
//!    can be inverted in place: a flipped sensor (swap the two sequences
//!    back — accepted only when the swap clears a pre-existing conservation
//!    violation on every adjacent component) and a duplicating sensor
//!    (collapse exact-duplicate timestamps — sound because two distinct
//!    objects crossing at the *same* float instant is measure-zero for
//!    continuous motion). A repaired edge passes re-audit and keeps serving
//!    exact counts.
//! 2. **Quarantine as demotion.** Edges that stay flagged are demoted to
//!    unmonitored ([`SampledGraph::demote_edges`]). The components they
//!    separated merge, and the existing `R₂`/`R₁` resolution machinery then
//!    produces honest sub/super-regions — corrupted counts are never
//!    integrated, so no finite per-edge fallback interval is needed (none
//!    exists: an object cycling through one edge makes its net flow
//!    unbounded).
//! 3. **Interval re-solve.** For an isolated quarantined edge whose two
//!    adjacent components have otherwise healthy boundaries, conservation
//!    of those components pins the edge's net flow to
//!    `[−S₁(t), S₂(t)]` ([`net_flow_interval`]); when the merged population
//!    is zero, the interval collapses to a point and the edge's net count is
//!    determined exactly despite the corruption.
//!
//! [`answer_with_bounds`] then brackets every query kind between the
//! demoted graph's lower and upper resolutions, which is how faulty serving
//! stays sound: `lower ≤ oracle ≤ upper` holds as long as the surviving
//! monitored edges are intact.

use crate::engine::QueryPlan;
use crate::query::{Approximation, QueryKind, QueryRegion};
use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_forms::audit::{audit, conservation_violation, AuditConfig, AuditReport, ComponentSpec};
use stq_forms::{
    snapshot_count, static_interval_lower_bound, CountSource, EdgeHealth, Evidence, FormStore,
    Time, TrackingForm,
};

/// Tuning for the audit-repair pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepairConfig {
    /// Detector thresholds passed through to the auditor.
    pub audit: AuditConfig,
}

/// Which exact repair was applied to an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// The two direction sequences were swapped back (flipped polarity).
    Unflip,
    /// Exact-duplicate timestamps were collapsed (duplicating sensor).
    Dedup,
}

/// One successfully repaired edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairedEdge {
    /// The repaired edge.
    pub edge: usize,
    /// How it was fixed.
    pub kind: RepairKind,
}

/// The result of the full quarantine-and-repair pass.
#[derive(Debug)]
pub struct RepairOutcome {
    /// Audit of the store as ingested, before any repair.
    pub initial: AuditReport,
    /// Audit after repairs — what the quarantine decision is based on.
    pub report: AuditReport,
    /// Edges restored exactly.
    pub repaired: Vec<RepairedEdge>,
    /// Edges demoted to unmonitored (still flagged after repair).
    pub quarantined: Vec<usize>,
    /// The patched sampled graph with quarantined edges demoted.
    pub graph: SampledGraph,
}

/// Audits `store` on `graph`, applies exact repairs in place, and demotes
/// whatever stays flagged. `horizon` is the observation window the workload
/// was ingested over.
pub fn quarantine_and_repair(
    sensing: &SensingGraph,
    graph: &SampledGraph,
    store: &mut FormStore,
    horizon: (Time, Time),
    cfg: &RepairConfig,
) -> RepairOutcome {
    let monitored: Vec<usize> =
        graph.monitored().iter().enumerate().filter(|&(_, &m)| m).map(|(e, _)| e).collect();
    let comps = graph.audit_components(sensing);
    let initial = audit(store, &monitored, &comps, horizon, &cfg.audit);

    let mut repaired = Vec::new();
    for &edge in &initial.flagged() {
        let verdict = initial.verdict(edge).expect("flagged edges have verdicts");
        let non_monotone =
            verdict.evidence.iter().any(|e| matches!(e, Evidence::NonMonotone { .. }));
        if non_monotone {
            continue; // unknown clock jitter cannot be inverted
        }
        let has_dups =
            verdict.evidence.iter().any(|e| matches!(e, Evidence::DuplicateTimestamps { .. }));
        if has_dups {
            store.set_form(edge, dedup_form(store.form(edge)));
            repaired.push(RepairedEdge { edge, kind: RepairKind::Dedup });
            continue;
        }
        let conserv = verdict.evidence.iter().any(|e| matches!(e, Evidence::Conservation { .. }));
        if conserv && verdict.health == EdgeHealth::Suspect && try_unflip(store, &comps, edge) {
            repaired.push(RepairedEdge { edge, kind: RepairKind::Unflip });
        }
    }

    let report = audit(store, &monitored, &comps, horizon, &cfg.audit);
    let quarantined = report.flagged();
    // A "repair" that left the edge flagged did not actually restore it.
    repaired.retain(|r| !quarantined.contains(&r.edge));
    let graph = graph.demote_edges(sensing, &quarantined);
    RepairOutcome { initial, report, repaired, quarantined, graph }
}

/// Collapses exact-duplicate adjacent timestamps in both directions.
fn dedup_form(form: &TrackingForm) -> TrackingForm {
    let collapse = |seq: &[Time]| {
        let mut v = seq.to_vec();
        v.dedup();
        v
    };
    TrackingForm::from_sequences(collapse(form.timestamps(true)), collapse(form.timestamps(false)))
}

/// Swaps an edge's direction sequences and keeps the swap only when it
/// clears a pre-existing conservation violation on the edge's adjacent
/// components without leaving any behind.
fn try_unflip(store: &mut FormStore, comps: &[ComponentSpec], edge: usize) -> bool {
    let adjacent: Vec<&ComponentSpec> =
        comps.iter().filter(|c| c.boundary.iter().any(|&(e, _)| e == edge)).collect();
    let violated =
        |s: &FormStore| adjacent.iter().filter(|c| conservation_violation(s, c).is_some()).count();
    if violated(store) == 0 {
        return false; // nothing to clear: the flip hypothesis has no support
    }
    let form = store.form(edge);
    let swapped = TrackingForm::from_sequences(
        form.timestamps(false).to_vec(),
        form.timestamps(true).to_vec(),
    );
    let original = store.form(edge).clone();
    store.set_form(edge, swapped);
    if violated(store) == 0 {
        true
    } else {
        store.set_form(edge, original);
        false
    }
}

/// Conservation interval for the net flow into `c1` through `edge` at time
/// `t`, assuming every *other* boundary edge of `c1` and `c2` is healthy:
/// `x(t) ∈ [−S₁(t), S₂(t)]`, where `Sᵢ` is the net inflow of component `i`
/// through its healthy boundary. The width `S₁ + S₂` is the population of
/// the merged component, so the edge's net count is **determined exactly**
/// whenever that merged population is zero.
pub fn net_flow_interval(
    store: &dyn CountSource,
    c1: &ComponentSpec,
    c2: &ComponentSpec,
    edge: usize,
    t: Time,
) -> (f64, f64) {
    let healthy_net = |c: &ComponentSpec| {
        c.boundary
            .iter()
            .filter(|&&(e, _)| e != edge)
            .map(|&(e, inward_forward)| {
                store.count_until(e, inward_forward, t) - store.count_until(e, !inward_forward, t)
            })
            .sum::<f64>()
    };
    (-healthy_net(c1), healthy_net(c2))
}

/// A sound bracket for one query on a (possibly quarantine-demoted) graph.
#[derive(Clone, Copy, Debug)]
pub struct BoundedAnswer {
    /// Sound lower bound on the true answer (`−∞` when even that is
    /// undetermined, e.g. a transient query whose super-region misses).
    pub lower: f64,
    /// Sound upper bound (`+∞` when the super-region touches the outside
    /// world and no finite bound exists).
    pub upper: f64,
    /// No super-region resolution exists — the bracket is vacuous.
    pub miss: bool,
    /// Honest coverage: junction cells of the enclosed sub-region over the
    /// enclosing super-region (1.0 = exact resolution, 0.0 on miss).
    pub coverage: f64,
}

impl BoundedAnswer {
    /// Whether `truth` falls inside the bracket (with float tolerance).
    pub fn contains(&self, truth: f64) -> bool {
        self.lower - 1e-9 <= truth && truth <= self.upper + 1e-9
    }

    /// Bracket width; infinite for vacuous bounds.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Answers one query as a sound `[lower, upper]` bracket on the demoted
/// graph: the enclosed sub-region `R₂` bounds from below, the enclosing
/// super-region `R₁` from above, with the per-kind bracket algebra
/// documented inline. Sound as long as the graph's monitored edges carry
/// intact data — which quarantine just arranged.
pub fn answer_with_bounds<S: CountSource + ?Sized>(
    sensing: &SensingGraph,
    graph: &SampledGraph,
    store: &S,
    query: &QueryRegion,
    kind: QueryKind,
) -> BoundedAnswer {
    let lower = QueryPlan::compile(sensing, graph, query, Approximation::Lower);
    let upper = QueryPlan::compile(sensing, graph, query, Approximation::Upper);
    bounds_from_plans(&lower, &upper, store, kind)
}

/// The bracket algebra itself, on precompiled lower/upper plans — the
/// engine-cached path the serving runtime uses ([`answer_with_bounds`] is
/// the one-shot wrapper). `lower` must be the `R₂` plan and `upper` the
/// `R₁` plan of the *same* region on the *same* graph.
pub fn bounds_from_plans<S: CountSource + ?Sized>(
    lower: &QueryPlan,
    upper: &QueryPlan,
    store: &S,
    kind: QueryKind,
) -> BoundedAnswer {
    // Population of the sub-region: 0 when it is empty (trivially sound).
    let pop_lo =
        |t: Time| if lower.miss { 0.0 } else { snapshot_count(store, &lower.boundary, t).max(0.0) };
    // Population of the super-region: unbounded when it does not resolve.
    let pop_hi = |t: Time| {
        if upper.miss {
            f64::INFINITY
        } else {
            snapshot_count(store, &upper.boundary, t)
        }
    };

    let (lo, hi) = match kind {
        // pop(R₂, t) ≤ pop(R, t) ≤ pop(R₁, t): region monotonicity of counts.
        QueryKind::Snapshot(t) => (pop_lo(t), pop_hi(t)),
        // Net change brackets from the endpoint populations:
        // pop_lo(t1) − pop_hi(t0) ≤ pop(R,t1) − pop(R,t0) ≤ pop_hi(t1) − pop_lo(t0).
        QueryKind::Transient(t0, t1) => (pop_lo(t1) - pop_hi(t0), pop_hi(t1) - pop_lo(t0)),
        // Whole-interval presence: monotone in the region, ≤ min of endpoint
        // populations; the lower estimator is itself a sound lower bound on
        // the sub-region's static count.
        QueryKind::Static(t0, t1) => (
            if lower.miss {
                0.0
            } else {
                static_interval_lower_bound(store, &lower.boundary, t0, t1).max(0.0)
            },
            pop_hi(t0).min(pop_hi(t1)).max(0.0),
        ),
    };
    let miss = upper.miss;
    let coverage =
        if miss { 0.0 } else { lower.covered_cells() as f64 / upper.covered_cells().max(1) as f64 };
    BoundedAnswer { lower: lo, upper: hi, miss, coverage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::Connectivity;
    use crate::tracker::{ingest, ingest_with_faults};
    use stq_mobility::gen::delaunay_city;
    use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};
    use stq_net::{SensorFault, SensorFaultKind, SensorFaultPlan};

    struct Fixture {
        sensing: SensingGraph,
        graph: SampledGraph,
        trajs: Vec<stq_mobility::Trajectory>,
        horizon: (f64, f64),
    }

    fn fixture() -> Fixture {
        let net = delaunay_city(120, 0.15, 6, 23).unwrap();
        let sensing = SensingGraph::new(net);
        let cfg =
            TrajectoryConfig { speed: 8.0, pause: 20.0, duration: 3_000.0, exit_probability: 0.3 };
        let mix = WorkloadMix { random_waypoint: 15, commuter: 10, transit: 8 };
        let trajs = generate_mix(sensing.road(), mix, cfg, 77);
        let cands = sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let graph = SampledGraph::from_sensors(&sensing, &faces, Connectivity::Triangulation);
        Fixture { sensing, graph, trajs, horizon: (0.0, 3_000.0) }
    }

    fn whole_horizon(edge: usize, kind: SensorFaultKind) -> SensorFaultPlan {
        SensorFaultPlan::from_faults(
            9,
            vec![SensorFault { edge, kind, from: f64::NEG_INFINITY, until: f64::INFINITY }],
        )
    }

    /// Monitored edges with enough traffic to make faults observable.
    fn busy_monitored(f: &Fixture, clean: &FormStore, min_events: usize) -> Vec<usize> {
        (0..clean.num_edges())
            .filter(|&e| {
                f.graph.monitored()[e]
                    && clean.form(e).total(true) + clean.form(e).total(false) >= min_events
            })
            .collect()
    }

    #[test]
    fn clean_store_needs_no_quarantine() {
        let f = fixture();
        let mut tracked = ingest(&f.sensing, &f.trajs);
        let out = quarantine_and_repair(
            &f.sensing,
            &f.graph,
            &mut tracked.store,
            f.horizon,
            &RepairConfig::default(),
        );
        assert!(out.initial.violations().is_empty(), "clean 1-forms conserve");
        assert!(out.repaired.is_empty());
        // Silence heuristics may quarantine genuinely quiet edges; that
        // costs coverage, never correctness — but no conservation or local
        // evidence may exist.
        for &e in &out.quarantined {
            let v = out.report.verdict(e).unwrap();
            assert!(v.evidence.iter().all(|ev| matches!(
                ev,
                Evidence::SilentGap { .. } | Evidence::SilentSibling { .. }
            )));
        }
    }

    #[test]
    fn flipped_edge_is_unflipped_exactly() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        let mut fixed_any = false;
        for &edge in busy_monitored(&f, &clean, 6).iter().take(12) {
            let plan = whole_horizon(edge, SensorFaultKind::Flipped);
            let mut tracked = ingest_with_faults(&f.sensing, &f.trajs, &plan);
            assert_ne!(
                tracked.store.form(edge).timestamps(true),
                clean.form(edge).timestamps(true),
                "flip must corrupt edge {edge}"
            );
            let out = quarantine_and_repair(
                &f.sensing,
                &f.graph,
                &mut tracked.store,
                f.horizon,
                &RepairConfig::default(),
            );
            if out.repaired.iter().any(|r| r.edge == edge && r.kind == RepairKind::Unflip) {
                assert_eq!(
                    tracked.store.form(edge).timestamps(true),
                    clean.form(edge).timestamps(true)
                );
                assert_eq!(
                    tracked.store.form(edge).timestamps(false),
                    clean.form(edge).timestamps(false)
                );
                assert!(!out.quarantined.contains(&edge));
                fixed_any = true;
            } else {
                // Not confidently repairable: must be quarantined instead.
                assert!(out.quarantined.contains(&edge), "edge {edge} neither fixed nor demoted");
            }
        }
        assert!(fixed_any, "at least one flipped edge must be exactly repaired");
    }

    #[test]
    fn duplicated_edge_is_deduped_exactly() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        let edge = busy_monitored(&f, &clean, 6)[0];
        let plan = whole_horizon(edge, SensorFaultKind::Duplicating);
        let mut tracked = ingest_with_faults(&f.sensing, &f.trajs, &plan);
        assert!(
            tracked.store.form(edge).total(true) + tracked.store.form(edge).total(false)
                > clean.form(edge).total(true) + clean.form(edge).total(false)
        );
        let out = quarantine_and_repair(
            &f.sensing,
            &f.graph,
            &mut tracked.store,
            f.horizon,
            &RepairConfig::default(),
        );
        assert!(out.repaired.iter().any(|r| r.edge == edge && r.kind == RepairKind::Dedup));
        assert_eq!(tracked.store.form(edge).timestamps(true), clean.form(edge).timestamps(true));
        assert_eq!(tracked.store.form(edge).timestamps(false), clean.form(edge).timestamps(false));
    }

    #[test]
    fn skewed_edge_is_quarantined_not_repaired() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        // Find a busy edge whose skew actually breaks monotonicity.
        for &edge in &busy_monitored(&f, &clean, 8) {
            let plan = whole_horizon(edge, SensorFaultKind::Skewed);
            let mut tracked = ingest_with_faults(&f.sensing, &f.trajs, &plan);
            let form = tracked.store.form(edge);
            if form.is_monotone(true) && form.is_monotone(false) {
                continue;
            }
            let out = quarantine_and_repair(
                &f.sensing,
                &f.graph,
                &mut tracked.store,
                f.horizon,
                &RepairConfig::default(),
            );
            assert!(out.quarantined.contains(&edge));
            assert!(!out.repaired.iter().any(|r| r.edge == edge));
            return;
        }
        panic!("no busy edge produced a non-monotone skew");
    }

    #[test]
    fn bounded_answers_are_sound_with_dead_sensors() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        let busy = busy_monitored(&f, &clean, 4);
        // Kill ~20% of the busy monitored sensors for the whole horizon.
        let dead: Vec<SensorFault> = busy
            .iter()
            .step_by(5)
            .map(|&edge| SensorFault {
                edge,
                kind: SensorFaultKind::Dead,
                from: f64::NEG_INFINITY,
                until: f64::INFINITY,
            })
            .collect();
        assert!(!dead.is_empty());
        let plan = SensorFaultPlan::from_faults(3, dead);
        let mut tracked = ingest_with_faults(&f.sensing, &f.trajs, &plan);
        let out = quarantine_and_repair(
            &f.sensing,
            &f.graph,
            &mut tracked.store,
            f.horizon,
            &RepairConfig::default(),
        );

        let bb = f.sensing.road().bbox();
        let rect = stq_geom::Rect::from_corners(bb.min.lerp(bb.max, 0.2), bb.min.lerp(bb.max, 0.8));
        let q = QueryRegion::from_rect(&f.sensing, rect);
        let inside = |j: usize| q.junctions.contains(&j);
        for kind in [
            QueryKind::Snapshot(1_500.0),
            QueryKind::Transient(400.0, 2_200.0),
            QueryKind::Static(400.0, 2_200.0),
        ] {
            let b = answer_with_bounds(&f.sensing, &out.graph, &tracked.store, &q, kind);
            let truth = match kind {
                QueryKind::Snapshot(t) => tracked.oracle.snapshot_count(&inside, t) as f64,
                QueryKind::Transient(t0, t1) => {
                    tracked.oracle.transient_count(&inside, t0, t1) as f64
                }
                QueryKind::Static(t0, t1) => {
                    tracked.oracle.static_interval_count(&inside, t0, t1) as f64
                }
            };
            assert!(
                b.contains(truth),
                "{kind:?}: oracle {truth} outside [{}, {}]",
                b.lower,
                b.upper
            );
            assert!((0.0..=1.0).contains(&b.coverage));
        }
    }

    #[test]
    fn demotion_merges_components() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        let victims: Vec<usize> = busy_monitored(&f, &clean, 1).into_iter().take(5).collect();
        let demoted = f.graph.demote_edges(&f.sensing, &victims);
        assert!(demoted.components().len() <= f.graph.components().len());
        assert_eq!(demoted.num_monitored_edges(), f.graph.num_monitored_edges() - victims.len());
    }

    #[test]
    fn reroute_restores_granularity() {
        let f = fixture();
        let clean = ingest(&f.sensing, &f.trajs).store;
        let dead: Vec<usize> =
            busy_monitored(&f, &clean, 1).into_iter().step_by(7).take(4).collect();
        let demoted = f.graph.demote_edges(&f.sensing, &dead);
        let patched = f.graph.reroute_around(&f.sensing, &dead);
        for &e in &dead {
            assert!(!patched.monitored()[e], "dead edges stay unmonitored");
        }
        // The detours must buy back face granularity lost to plain demotion.
        assert!(
            patched.components().len() >= demoted.components().len(),
            "patched {} vs demoted {}",
            patched.components().len(),
            demoted.components().len()
        );
    }

    #[test]
    fn net_flow_interval_brackets_true_flow() {
        let f = fixture();
        let tracked = ingest(&f.sensing, &f.trajs);
        let comps = f.graph.audit_components(&f.sensing);
        // Any edge shared by two audited components.
        for c1 in &comps {
            for &(edge, inward_forward) in &c1.boundary {
                let Some(c2) = comps
                    .iter()
                    .find(|c| c.id != c1.id && c.boundary.iter().any(|&(e, _)| e == edge))
                else {
                    continue;
                };
                for &t in &[500.0, 1_500.0, 2_500.0] {
                    let (lo, hi) = net_flow_interval(&tracked.store, c1, c2, edge, t);
                    let x = tracked.store.count_until(edge, inward_forward, t)
                        - tracked.store.count_until(edge, !inward_forward, t);
                    assert!(
                        lo - 1e-9 <= x && x <= hi + 1e-9,
                        "edge {edge} t {t}: {x} outside [{lo}, {hi}]"
                    );
                }
                return; // one shared edge suffices
            }
        }
        panic!("no edge shared between two audited components");
    }
}
