//! Sampled sensing graphs `G̃` (paper §4.5).
//!
//! A sampled graph monitors only a subset of sensing links: the shortest-path
//! materialization of abstract edges between selected communication sensors
//! (triangulation or k-NN connectivity), or the boundary edges of
//! submodular-selected regions (§4.4). Because the materialized edge set is
//! a subgraph of the planar sensing graph `G`, `G̃` is planar for free — the
//! paper's "intersection nodes" are exactly the shared `G`-vertices.
//!
//! Faces of `G̃` are unions of junction cells, computed on the primal side as
//! connected components of the road graph minus the monitored roads
//! (`stq_planar::dual::subgraph_faces`).

use std::collections::HashSet;

use crate::sensing::SensingGraph;
use stq_geom::triangulate;
use stq_planar::dual::subgraph_faces;
use stq_planar::embedding::{FaceId, VertexId};
use stq_planar::paths::{bfs_hops, dijkstra};
use stq_spatial::KdTree;
use stq_submod::{cost_benefit_greedy, partition_atoms, AtomObjective};

/// How abstract edges between sampled sensors are generated (§4.5, Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Connectivity {
    /// Delaunay triangulation of the sensor positions.
    Triangulation,
    /// Each sensor connects to its `k` nearest sampled neighbours.
    Knn(usize),
}

/// A sampled sensing graph.
#[derive(Clone, Debug)]
pub struct SampledGraph {
    /// Per road edge: is its dual sensing link monitored?
    monitored: Vec<bool>,
    /// The communication sensors (sampled faces).
    sensors: Vec<FaceId>,
    /// Face id of `G̃` for each junction (component of the cut road graph).
    component_of: Vec<usize>,
    /// Junctions of each `G̃` face.
    components: Vec<Vec<VertexId>>,
    /// The component containing `v_ext` — the unobservable outside world.
    ext_component: usize,
}

impl SampledGraph {
    /// The fully monitored graph (no sampling) — the exact baseline the
    /// relative error is measured against (§5.1.4).
    pub fn unsampled(sensing: &SensingGraph) -> Self {
        let monitored = vec![true; sensing.num_edges()];
        Self::finish(sensing, monitored, (0..sensing.num_faces()).collect())
    }

    /// Builds `G̃` from selected sensors: connect them per `conn`, then
    /// materialize each abstract edge as the shortest path in `G`.
    pub fn from_sensors(
        sensing: &SensingGraph,
        sensor_faces: &[FaceId],
        conn: Connectivity,
    ) -> Self {
        let positions: Vec<stq_geom::Point> = sensor_faces
            .iter()
            .map(|&f| sensing.sensor_pos(f).expect("sampled faces must host sensors"))
            .collect();

        // Abstract edges as index pairs into `sensor_faces`.
        let mut pairs: Vec<(usize, usize)> = match conn {
            Connectivity::Triangulation => triangulate(&positions).edges(),
            Connectivity::Knn(k) => {
                let entries: Vec<(stq_geom::Point, u32)> =
                    positions.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
                let tree = KdTree::build(&entries, 8);
                let mut es = Vec::new();
                for (i, &p) in positions.iter().enumerate() {
                    for n in tree.knn(p, k + 1) {
                        let j = n.id as usize;
                        if j != i {
                            es.push(if i < j { (i, j) } else { (j, i) });
                        }
                    }
                }
                es.sort_unstable();
                es.dedup();
                es
            }
        };
        // Degenerate sensor sets (collinear, < 3) may triangulate to nothing:
        // fall back to a nearest-neighbour chain so the graph is usable.
        if pairs.is_empty() && sensor_faces.len() >= 2 {
            for i in 1..sensor_faces.len() {
                pairs.push((i - 1, i));
            }
        }

        // Materialize: group by source, one Dijkstra per source.
        let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); sensor_faces.len()];
        for &(a, b) in &pairs {
            by_source[a].push(b);
        }
        let mut monitored = vec![false; sensing.num_edges()];
        let adj = sensing.dual_adjacency();
        for (a, targets) in by_source.iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let sp = dijkstra(adj, sensor_faces[a]);
            for &b in targets {
                if let Some((_, edges)) = sp.path_to(sensor_faces[b]) {
                    for e in edges {
                        monitored[e] = true;
                    }
                }
            }
        }
        Self::finish(sensing, monitored, sensor_faces.to_vec())
    }

    /// Query-adaptive construction (§4.4): partition the historical query
    /// regions into atoms, run cost-benefit greedy under `edge_budget`
    /// monitored edges, and monitor the selected atoms' boundaries.
    pub fn from_submodular(
        sensing: &SensingGraph,
        historical: &[Vec<VertexId>],
        edge_budget: f64,
    ) -> Self {
        let emb = sensing.road().embedding();
        let atoms = partition_atoms(historical, emb.edges(), emb.num_vertices());
        let sizes: Vec<usize> = historical.iter().map(|q| q.len()).collect();
        let obj = AtomObjective::new(atoms, sizes);
        let sel = cost_benefit_greedy(&obj, edge_budget);
        let mut monitored = vec![false; sensing.num_edges()];
        for e in obj.selected_edges(&sel) {
            monitored[e] = true;
        }
        // Communication sensors: faces incident to monitored edges.
        let mut sensors: Vec<FaceId> = monitored
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .flat_map(|(e, _)| {
                let (f, g) = sensing.dual().edge_faces[e];
                [f, g]
            })
            .filter(|&f| sensing.sensor_pos(f).is_some())
            .collect();
        sensors.sort_unstable();
        sensors.dedup();
        Self::finish(sensing, monitored, sensors)
    }

    fn finish(sensing: &SensingGraph, monitored: Vec<bool>, sensors: Vec<FaceId>) -> Self {
        let sf = subgraph_faces(sensing.road().embedding(), &monitored);
        let ext_component = sf.component_of[sensing.road().v_ext()];
        SampledGraph {
            monitored,
            sensors,
            component_of: sf.component_of,
            components: sf.members,
            ext_component,
        }
    }

    /// Per-edge monitoring flags.
    pub fn monitored(&self) -> &[bool] {
        &self.monitored
    }

    /// Number of monitored sensing links.
    pub fn num_monitored_edges(&self) -> usize {
        self.monitored.iter().filter(|&&m| m).count()
    }

    /// The communication sensors.
    pub fn sensors(&self) -> &[FaceId] {
        &self.sensors
    }

    /// Fraction of all placeable sensors that are communication sensors —
    /// the "size of the sampled graph" axis of the paper's figures.
    pub fn size_fraction(&self, sensing: &SensingGraph) -> f64 {
        self.sensors.len() as f64 / sensing.num_sensors().max(1) as f64
    }

    /// Face of `G̃` containing junction `j`.
    pub fn component_of(&self, j: VertexId) -> usize {
        self.component_of[j]
    }

    /// Faces of `G̃` as junction sets.
    pub fn components(&self) -> &[Vec<VertexId>] {
        &self.components
    }

    /// Lower-bound resolution `R₂` (Fig. 7): the union of `G̃` faces fully
    /// contained in the query's junction set.
    pub fn resolve_lower(&self, query: &HashSet<VertexId>) -> HashSet<VertexId> {
        let mut in_query_count = std::collections::HashMap::new();
        for &j in query {
            *in_query_count.entry(self.component_of[j]).or_insert(0usize) += 1;
        }
        let mut covered = HashSet::new();
        for (&comp, &cnt) in &in_query_count {
            if cnt == self.components[comp].len() {
                covered.extend(self.components[comp].iter().copied());
            }
        }
        covered
    }

    /// Upper-bound resolution `R₁` (Fig. 7): the union of `G̃` faces that
    /// intersect the query's junction set.
    ///
    /// The outside-world face (the one merged with `v_ext`) can never be
    /// part of an answerable region: objects begin there *before* tracking,
    /// so its boundary integral does not reflect a population. If any query
    /// junction falls in it, no valid upper bound exists on this sampled
    /// graph and the empty set (a query miss) is returned.
    pub fn resolve_upper(&self, query: &HashSet<VertexId>) -> HashSet<VertexId> {
        let comps: HashSet<usize> = query.iter().map(|&j| self.component_of[j]).collect();
        if comps.contains(&self.ext_component) {
            return HashSet::new();
        }
        let mut covered = HashSet::new();
        for comp in comps {
            covered.extend(self.components[comp].iter().copied());
        }
        covered
    }

    /// The component merged with the outside world.
    pub fn ext_component(&self) -> usize {
        self.ext_component
    }

    /// Describes every non-exterior component by its inward-oriented
    /// monitored boundary — the input the 1-form integrity auditor needs.
    /// The exterior component is excluded on purpose: its boundary contains
    /// the unmonitored entry ramps, so the outside world is not conserved
    /// from monitored data.
    pub fn audit_components(&self, sensing: &SensingGraph) -> Vec<stq_forms::ComponentSpec> {
        self.components
            .iter()
            .enumerate()
            .filter(|&(id, _)| id != self.ext_component)
            .map(|(id, junctions)| {
                let set: HashSet<VertexId> = junctions.iter().copied().collect();
                let boundary = sensing
                    .boundary_of(&set, Some(&self.monitored))
                    .into_iter()
                    .map(|be| (be.edge, be.inward_forward))
                    .collect();
                stq_forms::ComponentSpec { id, boundary }
            })
            .collect()
    }

    /// Quarantine: demotes `edges` to unmonitored and recomputes the faces.
    /// Components separated only by a quarantined edge merge, so the
    /// existing lower/upper resolution machinery automatically widens query
    /// answers to sound bounds — no corrupted count is ever integrated.
    pub fn demote_edges(&self, sensing: &SensingGraph, edges: &[usize]) -> SampledGraph {
        let mut monitored = self.monitored.clone();
        for &e in edges {
            monitored[e] = false;
        }
        Self::finish(sensing, monitored, self.sensors.clone())
    }

    /// Failover patch: for each dead monitored edge, re-route the monitoring
    /// duty along the cheapest live detour between the edge's two dual
    /// faces, escalating to multi-face detours (up to 3 dual rings) when no
    /// single-ring cycle survives. See [`Self::reroute_around_multi`].
    pub fn reroute_around(&self, sensing: &SensingGraph, dead: &[usize]) -> SampledGraph {
        self.reroute_around_multi(sensing, dead, 3)
    }

    /// Multi-face failover patch. For each dead monitored edge with dual
    /// faces `(f, g)`:
    ///
    /// 1. **Ring 1** — the cheapest live dual path `f → g` (the classic
    ///    detour cycle around the dead edge).
    /// 2. **Rings 2..=`max_ring`** — when no single-ring detour survives
    ///    (the neighbourhood itself is riddled with failures), search for the
    ///    cheapest live path between *any* pair of faces within `r` dual
    ///    hops of `f` and of `g`. Monitoring that path still cuts the merged
    ///    region apart — just along a wider cycle that skirts the dead zone.
    ///
    /// Every edge the detour monitors is live, so the patch only ever
    /// *refines* the face partition (monitoring is monotone in granularity)
    /// and never integrates corrupted data. Detours through outside faces
    /// (≥ 1e9 penalty weights) would monitor ramps; such cuts stay open —
    /// demotion keeps the answers sound, just coarser. Edges in `dead` are
    /// never selected again.
    pub fn reroute_around_multi(
        &self,
        sensing: &SensingGraph,
        dead: &[usize],
        max_ring: usize,
    ) -> SampledGraph {
        let dead_set: HashSet<usize> = dead.iter().copied().collect();
        // Live-only dual adjacency: dead sensing links cannot carry duty.
        let adj: stq_planar::paths::WeightedAdj = sensing
            .dual_adjacency()
            .iter()
            .map(|nbrs| nbrs.iter().copied().filter(|&(_, e, _)| !dead_set.contains(&e)).collect())
            .collect();
        // Unweighted *full* dual adjacency (dead edges included): rings are
        // topological neighbourhoods of the failure, not live reachability.
        let hops_adj: Vec<Vec<usize>> = sensing
            .dual_adjacency()
            .iter()
            .map(|n| n.iter().map(|&(v, _, _)| v).collect())
            .collect();
        let mut monitored = self.monitored.clone();
        for &e in dead {
            if !self.monitored[e] {
                continue;
            }
            monitored[e] = false;
            let (f, g) = sensing.dual().edge_faces[e];
            let sp = dijkstra(&adj, f);
            if sp.dist[g] < 1e9 {
                if let Some((_, edges)) = sp.path_to(g) {
                    for pe in edges {
                        monitored[pe] = true;
                    }
                }
                continue;
            }
            if max_ring < 2 {
                continue;
            }
            // Ring escalation: cheapest live path between the two widening
            // neighbourhoods of the dead edge's endpoints.
            let from_f = bfs_hops(&hops_adj, f);
            let from_g = bfs_hops(&hops_adj, g);
            'rings: for r in 2..=max_ring {
                let near_f: Vec<usize> =
                    (0..hops_adj.len()).filter(|&x| from_f[x] <= r && x != g).collect();
                let near_g: HashSet<usize> =
                    (0..hops_adj.len()).filter(|&x| from_g[x] <= r && x != f).collect();
                let mut best: Option<(f64, usize, usize)> = None;
                for &fp in &near_f {
                    let sp = dijkstra(&adj, fp);
                    for &gp in &near_g {
                        if gp != fp
                            && sp.dist[gp] < 1e9
                            && sp.dist[gp] < best.map_or(f64::INFINITY, |(d, _, _)| d)
                        {
                            best = Some((sp.dist[gp], fp, gp));
                        }
                    }
                }
                if let Some((_, fp, gp)) = best {
                    let sp = dijkstra(&adj, fp);
                    if let Some((_, edges)) = sp.path_to(gp) {
                        for pe in edges {
                            monitored[pe] = true;
                        }
                    }
                    break 'rings;
                }
            }
        }
        // A detour may itself have been killed: never monitor a dead edge.
        for &e in dead {
            monitored[e] = false;
        }
        Self::finish(sensing, monitored, self.sensors.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_mobility::gen::{delaunay_city, perturbed_grid};

    fn sensing() -> SensingGraph {
        SensingGraph::new(delaunay_city(150, 0.15, 6, 17).unwrap())
    }

    fn sampled(sensing: &SensingGraph, frac: f64, conn: Connectivity) -> SampledGraph {
        let cands = sensing.sensor_candidates();
        let m = ((cands.len() as f64 * frac) as usize).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, m, 7);
        let faces: Vec<usize> = ids.into_iter().map(|f| f as usize).collect();
        SampledGraph::from_sensors(sensing, &faces, conn)
    }

    #[test]
    fn unsampled_components_are_singletons() {
        let s = SensingGraph::new(perturbed_grid(5, 5, 0.1, 0.0, 4, 1).unwrap());
        let g = SampledGraph::unsampled(&s);
        assert_eq!(g.components().len(), s.road().embedding().num_vertices());
        assert!(g.components().iter().all(|c| c.len() == 1));
        assert_eq!(g.num_monitored_edges(), s.num_edges());
    }

    #[test]
    fn sampled_graph_monitors_subset() {
        let s = sensing();
        let g = sampled(&s, 0.15, Connectivity::Triangulation);
        assert!(g.num_monitored_edges() > 0);
        assert!(g.num_monitored_edges() < s.num_edges());
        // Never monitors ramps (their dual faces host no sensors).
        for &r in s.road().ramps() {
            assert!(!g.monitored()[r], "ramp {r} must stay unmonitored");
        }
    }

    #[test]
    fn components_partition_junctions() {
        let s = sensing();
        let g = sampled(&s, 0.1, Connectivity::Triangulation);
        let total: usize = g.components().iter().map(|c| c.len()).sum();
        assert_eq!(total, s.road().embedding().num_vertices());
    }

    #[test]
    fn lower_resolution_is_contained_in_query() {
        let s = sensing();
        let g = sampled(&s, 0.2, Connectivity::Triangulation);
        let rect = {
            let bb = s.road().bbox();
            stq_geom::Rect::from_corners(bb.min, bb.min.lerp(bb.max, 0.6))
        };
        let query: HashSet<usize> = s.junctions_in_rect(&rect).into_iter().collect();
        let lower = g.resolve_lower(&query);
        assert!(lower.is_subset(&query));
        let upper = g.resolve_upper(&query);
        if !upper.is_empty() {
            // Non-missed upper bounds contain the query and the lower bound.
            assert!(query.is_subset(&upper));
            assert!(lower.is_subset(&upper));
        }
    }

    #[test]
    fn lower_boundary_edges_all_monitored() {
        let s = sensing();
        let g = sampled(&s, 0.15, Connectivity::Knn(4));
        let bb = s.road().bbox();
        let rect = stq_geom::Rect::from_corners(bb.min.lerp(bb.max, 0.2), bb.min.lerp(bb.max, 0.8));
        let query: HashSet<usize> = s.junctions_in_rect(&rect).into_iter().collect();
        let lower = g.resolve_lower(&query);
        if lower.is_empty() {
            return; // miss: nothing to check
        }
        // boundary_of debug_asserts monitoring; also check explicitly.
        let b = s.boundary_of(&lower, Some(g.monitored()));
        assert!(!b.is_empty());
        for be in &b {
            assert!(g.monitored()[be.edge]);
        }
    }

    #[test]
    fn knn_monitors_more_with_larger_k() {
        let s = sensing();
        let g3 = sampled(&s, 0.15, Connectivity::Knn(3));
        let g8 = sampled(&s, 0.15, Connectivity::Knn(8));
        assert!(g8.num_monitored_edges() >= g3.num_monitored_edges());
        // More monitored edges → more (finer) faces.
        assert!(g8.components().len() >= g3.components().len());
    }

    #[test]
    fn bigger_samples_refine_faces() {
        let s = sensing();
        let g_small = sampled(&s, 0.05, Connectivity::Triangulation);
        let g_large = sampled(&s, 0.4, Connectivity::Triangulation);
        assert!(g_large.components().len() > g_small.components().len());
    }

    #[test]
    fn multi_ring_reroute_survives_a_dead_neighbourhood() {
        let s = sensing();
        let g = sampled(&s, 0.25, Connectivity::Triangulation);
        // Kill one monitored edge plus every dual link around one of its
        // endpoint faces: no single-ring detour can survive, so ring-1
        // rerouting restores nothing around this failure.
        let e = g.monitored().iter().position(|&m| m).unwrap();
        let (f, _) = s.dual().edge_faces[e];
        let mut dead: Vec<usize> = s.dual_adjacency()[f].iter().map(|&(_, de, _)| de).collect();
        dead.push(e);
        dead.sort_unstable();
        dead.dedup();
        let single = g.reroute_around_multi(&s, &dead, 1);
        let multi = g.reroute_around_multi(&s, &dead, 3);
        for &de in &dead {
            assert!(!multi.monitored()[de], "dead edges stay unmonitored");
        }
        // Wider rings may only add live cuts: granularity is monotone.
        assert!(multi.num_monitored_edges() >= single.num_monitored_edges());
        assert!(multi.components().len() >= single.components().len());
    }

    #[test]
    fn submodular_graph_covers_historical_queries() {
        let s = sensing();
        let bb = s.road().bbox();
        // Two disjoint historical regions.
        let q1: Vec<usize> =
            s.junctions_in_rect(&stq_geom::Rect::from_corners(bb.min, bb.min.lerp(bb.max, 0.35)));
        let q2: Vec<usize> =
            s.junctions_in_rect(&stq_geom::Rect::from_corners(bb.min.lerp(bb.max, 0.6), bb.max));
        assert!(!q1.is_empty() && !q2.is_empty());
        let g = SampledGraph::from_submodular(&s, &[q1.clone(), q2.clone()], 1e9);
        // With an unlimited budget both historical regions resolve exactly.
        let q1set: HashSet<usize> = q1.iter().copied().collect();
        let lower = g.resolve_lower(&q1set);
        assert_eq!(lower, q1set);
    }

    #[test]
    fn submodular_budget_limits_edges() {
        let s = sensing();
        let bb = s.road().bbox();
        let q1: Vec<usize> =
            s.junctions_in_rect(&stq_geom::Rect::from_corners(bb.min, bb.min.lerp(bb.max, 0.5)));
        let budget = 10.0;
        let g = SampledGraph::from_submodular(&s, &[q1], budget);
        assert!(g.num_monitored_edges() <= budget as usize);
    }
}
