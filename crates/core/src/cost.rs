//! The theoretical cost model of §4.9 and its empirical counterpart.
//!
//! The paper argues that the querying cost (≈ sensors on the query
//! perimeter) is
//!
//! - unsampled: `|N_P| = α · (A(Q)/A(T)) · |N|` — *linear* in the query
//!   area, because axis-aligned in-network systems flood the region,
//! - sampled:   `|Ñ_P| = (A(Q)/A(T)) · m · k · ℓ_G` with `ℓ_G = g(|N|)`
//!   sub-linear (logarithmic for small-world graphs), so the sampled cost
//!   grows much more slowly.
//!
//! [`CostModel`] computes the predictions; [`measure_costs`] measures the
//! actual perimeter sizes so experiments (the `theory` binary) can compare
//! prediction against measurement.

use crate::query::{Approximation, QueryRegion};
use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_planar::paths::mean_path_length;

/// Parameters of the §4.9 cost model for one deployment.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Total sensors `|N|` in the full sensing graph.
    pub total_sensors: usize,
    /// Communication sensors `m` of the sampled graph.
    pub m: usize,
    /// Average connectivity degree `k` (≈ 6 − 12/m for triangulations, by
    /// Euler's formula, or the chosen k-NN `k`).
    pub k: f64,
    /// Mean shortest-path hop length `ℓ_G` in the sensing graph.
    pub ell_g: f64,
    /// Perimeter-band fraction `α` of the unsampled model (fitted, ~O(1)).
    pub alpha: f64,
}

impl CostModel {
    /// Builds the model for a sampled deployment by measuring `ℓ_G` on the
    /// sensing graph's communication topology (sampled hop lengths, seeded).
    pub fn for_deployment(sensing: &SensingGraph, sampled: &SampledGraph, alpha: f64) -> Self {
        let adj: Vec<Vec<usize>> = sensing
            .dual_adjacency()
            .iter()
            .map(|nbrs| nbrs.iter().filter(|&&(_, _, w)| w < 1e9).map(|&(v, _, _)| v).collect())
            .collect();
        let ell_g = mean_path_length(&adj, 64, 0xe11);
        let m = sampled.sensors().len();
        // Triangulation degree from Euler's formula: k = (3m − 6)/m.
        let k = if m >= 3 { (3 * m - 6) as f64 / m as f64 } else { 1.0 };
        CostModel { total_sensors: sensing.num_sensors(), m, k, ell_g, alpha }
    }

    /// Predicted sensors flooded by the unsampled system for a query of
    /// relative area `area_frac`.
    pub fn predicted_unsampled(&self, area_frac: f64) -> f64 {
        self.alpha * area_frac * self.total_sensors as f64
    }

    /// Predicted perimeter nodes of the sampled system (§4.9:
    /// `(A(Q)/A(T)) · m · k · ℓ_G`).
    pub fn predicted_sampled(&self, area_frac: f64) -> f64 {
        area_frac * self.m as f64 * self.k * self.ell_g
    }

    /// Admission price of one query for an overload gate: the predicted
    /// sampled perimeter (the per-edge work the shards must do) plus the
    /// shard fan-out those perimeter sensors can spread across (the message
    /// overhead), floored at one unit so even a degenerate region consumes
    /// capacity. Only *relative* pricing matters to the gate; the absolute
    /// scale is set by the gate's capacity knob.
    pub fn admission_units(&self, area_frac: f64, num_shards: usize) -> f64 {
        let perimeter = self.predicted_sampled(area_frac.clamp(0.0, 1.0)).max(1.0);
        let fanout = (num_shards.max(1) as f64).min(perimeter);
        perimeter + fanout
    }
}

/// Measured communication for one query on one deployment.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasuredCost {
    /// Sensors on the (lower-bound) sampled perimeter.
    pub sampled_perimeter: usize,
    /// Sensors inside the query rectangle (the flood set).
    pub flooded: usize,
}

/// Measures the §4.9 quantities for a batch of queries.
pub fn measure_costs(
    sensing: &SensingGraph,
    sampled: &SampledGraph,
    queries: &[QueryRegion],
) -> Vec<MeasuredCost> {
    queries
        .iter()
        .map(|q| {
            let plan = crate::engine::QueryPlan::compile(sensing, sampled, q, Approximation::Lower);
            MeasuredCost {
                sampled_perimeter: plan.nodes_accessed,
                flooded: sensing.sensors_in_rect(&q.rect).len(),
            }
        })
        .collect()
}

/// Least-squares slope of `y` against `x` through the origin — used to fit
/// `α` and to test linearity of cost growth.
pub fn fit_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    if sxx <= 0.0 {
        0.0
    } else {
        sxy / sxx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryRegion;
    use crate::scenario::{Scenario, ScenarioConfig};
    use stq_mobility::trajectory::WorkloadMix;

    fn setup() -> (Scenario, SampledGraph) {
        let s = Scenario::build(ScenarioConfig {
            junctions: 300,
            mix: WorkloadMix { random_waypoint: 5, commuter: 5, transit: 2 },
            seed: 9,
            ..Default::default()
        });
        let cands = s.sensing.sensor_candidates();
        let ids = stq_sampling::sample(
            stq_sampling::SamplingMethod::QuadTree,
            &cands,
            cands.len() / 8,
            3,
        );
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = crate::sampled::SampledGraph::from_sensors(
            &s.sensing,
            &faces,
            crate::sampled::Connectivity::Triangulation,
        );
        (s, g)
    }

    #[test]
    fn model_parameters_sane() {
        let (s, g) = setup();
        let model = CostModel::for_deployment(&s.sensing, &g, 1.0);
        assert_eq!(model.total_sensors, s.sensing.num_sensors());
        assert_eq!(model.m, g.sensors().len());
        assert!(model.k > 1.0 && model.k < 3.0);
        assert!(model.ell_g > 1.0, "mean hop length must exceed 1, got {}", model.ell_g);
        // Predictions scale linearly in area.
        let p1 = model.predicted_sampled(0.01);
        let p2 = model.predicted_sampled(0.02);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn admission_units_monotone_and_floored() {
        let (s, g) = setup();
        let model = CostModel::for_deployment(&s.sensing, &g, 1.0);
        // Larger regions never price cheaper, more shards never price cheaper.
        assert!(model.admission_units(0.0, 4) >= 2.0);
        assert!(model.admission_units(0.1, 4) <= model.admission_units(0.2, 4));
        assert!(model.admission_units(0.1, 1) <= model.admission_units(0.1, 8));
        // Out-of-range area fractions are clamped, not amplified.
        assert!(model.admission_units(7.0, 4) <= model.admission_units(1.0, 4) + 1e-9);
        assert!(model.admission_units(-1.0, 4) >= 2.0);
    }

    #[test]
    fn flood_grows_linearly_with_area() {
        let (s, g) = setup();
        let mut areas = Vec::new();
        let mut floods = Vec::new();
        for &frac in &[0.02, 0.05, 0.1, 0.2, 0.4] {
            let qs: Vec<QueryRegion> =
                s.make_queries(15, frac, 100.0, 5).into_iter().map(|(q, _, _)| q).collect();
            let measured = measure_costs(&s.sensing, &g, &qs);
            let mean_flood =
                measured.iter().map(|m| m.flooded as f64).sum::<f64>() / measured.len() as f64;
            areas.push(frac);
            floods.push(mean_flood);
        }
        // The fitted linear model should explain flooding well: residuals
        // below 30% of the prediction at the largest area.
        let slope = fit_slope(&areas, &floods);
        assert!(slope > 0.0);
        let predicted = slope * areas[4];
        assert!((floods[4] - predicted).abs() < 0.3 * predicted.max(1.0));
    }

    #[test]
    fn sampled_perimeter_grows_sublinearly() {
        let (s, g) = setup();
        // Mean over *resolved* queries only: a miss reports perimeter 0,
        // and misses concentrate at small areas, so including them deflates
        // the small-area mean and masks the actual per-query growth rate.
        let mean_perimeter = |frac: f64| {
            let qs: Vec<QueryRegion> =
                s.make_queries(15, frac, 100.0, 7).into_iter().map(|(q, _, _)| q).collect();
            let resolved: Vec<f64> = measure_costs(&s.sensing, &g, &qs)
                .iter()
                .filter(|m| m.sampled_perimeter > 0)
                .map(|m| m.sampled_perimeter as f64)
                .collect();
            resolved.iter().sum::<f64>() / (resolved.len() as f64).max(1.0)
        };
        let p_small = mean_perimeter(0.05);
        let p_large = mean_perimeter(0.4);
        // Area grew 8x; the perimeter must grow by clearly less (the paper's
        // near-constant / logarithmic access, Fig. 11c).
        assert!(
            p_large < 8.0 * p_small.max(1.0) * 0.75,
            "perimeter {p_small} → {p_large} is not sublinear"
        );
    }

    #[test]
    fn fit_slope_basics() {
        assert_eq!(fit_slope(&[1.0, 2.0], &[2.0, 4.0]), 2.0);
        assert_eq!(fit_slope(&[], &[]), 0.0);
        assert_eq!(fit_slope(&[0.0], &[5.0]), 0.0);
    }
}
