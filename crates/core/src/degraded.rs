//! Degraded-mode answering: useful, honestly-widened brackets under heavy
//! sensor loss.
//!
//! Quarantine keeps answers *sound* by demoting corrupted edges, but plain
//! demotion collapses utility: merged faces widen the `R₂`/`R₁` resolution
//! until coverage hits zero. This module escalates through three repair
//! strategies behind one [`DegradedPolicy`], always preferring the strongest
//! answer whose bracket is still **certified**:
//!
//! 1. [`DegradedStrategy::MultiFaceDetour`] — answer on the rerouted graph
//!    ([`SampledGraph::reroute_around_multi`]): live detour cycles, up to
//!    several dual rings wide, buy back face granularity structurally.
//! 2. [`DegradedStrategy::Imputation`] — answer on the *original* fine
//!    graph, replacing each quarantined boundary edge's net flow with its
//!    certified conservation interval ([`crate::impute::Imputer`]). When
//!    every needed interval is finite this restores the fine graph's full
//!    structural coverage, and the bracket is intersected with the rerouted
//!    one (both certified, so the intersection is too).
//! 3. [`DegradedStrategy::LearnedFallback`] — when imputation leaves a
//!    vacuous bound, per-edge `stq-learned` regressors fitted to the
//!    quarantined edges' own (suspect) logs supply a *point estimate only*,
//!    clamped into the certified bracket of the best structural strategy.
//!
//! ## The honest-widening guarantee
//!
//! Bracket endpoints only ever come from certified machinery — structural
//! demotion/detour resolution or conservation-interval arithmetic. Learned
//! predictions never touch a bound: they refine the point `value` and lower
//! the reported `confidence`, nothing else. Consequently every non-miss
//! [`DegradedAnswer`] bracket is finite and contains the truth whenever the
//! surviving monitored edges carry intact data — the same contract as
//! [`crate::repair::answer_with_bounds`], just tighter.

use std::collections::HashSet;

use crate::engine::{QueryEngine, QueryPlan};
use crate::impute::Imputer;
use crate::learned_store::LearnedStore;
use crate::query::evaluate;
use crate::query::{Approximation, QueryKind, QueryRegion};
use crate::repair::{bounds_from_plans, BoundedAnswer};
use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_forms::{static_interval_lower_bound, BoundaryEdge, CountSource, FormStore, Time};
use stq_learned::RegressorKind;

/// Which repair strategy produced a degraded answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradedStrategy {
    /// No quarantine in play: the answer is the ordinary bracket.
    None,
    /// Plain demotion resolved best (detours bought nothing here).
    Demoted,
    /// The multi-ring rerouted graph resolved best.
    MultiFaceDetour,
    /// Fine-graph resolution with certified conservation intervals.
    Imputation,
    /// Certified bracket from the best structural strategy, point value
    /// from learned regressors over the quarantined edges.
    LearnedFallback,
}

impl DegradedStrategy {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedStrategy::None => "none",
            DegradedStrategy::Demoted => "demoted",
            DegradedStrategy::MultiFaceDetour => "detour",
            DegradedStrategy::Imputation => "imputed",
            DegradedStrategy::LearnedFallback => "learned",
        }
    }

    /// Stable numeric code (trace rings store it compactly).
    pub fn code(&self) -> u8 {
        match self {
            DegradedStrategy::None => 0,
            DegradedStrategy::Demoted => 1,
            DegradedStrategy::MultiFaceDetour => 2,
            DegradedStrategy::Imputation => 3,
            DegradedStrategy::LearnedFallback => 4,
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u8) -> DegradedStrategy {
        match code {
            1 => DegradedStrategy::Demoted,
            2 => DegradedStrategy::MultiFaceDetour,
            3 => DegradedStrategy::Imputation,
            4 => DegradedStrategy::LearnedFallback,
            _ => DegradedStrategy::None,
        }
    }
}

/// Tuning for the degraded-mode escalation.
#[derive(Clone, Copy, Debug)]
pub struct DegradedPolicy {
    /// Widest dual ring the detour search may use (1 = classic single-ring).
    pub max_ring: usize,
    /// Whether conservation-interval imputation is attempted.
    pub impute: bool,
    /// Regressor family for the learned fallback (`None` disables it).
    pub learned: Option<RegressorKind>,
    /// Per-graph plan-cache capacity of the answerer's engines.
    pub plan_cache: usize,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        DegradedPolicy {
            max_ring: 3,
            impute: true,
            learned: Some(RegressorKind::PiecewiseLinear(8)),
            plan_cache: 128,
        }
    }
}

/// One degraded-mode answer: a certified bracket, a point estimate inside
/// it, and which strategy won.
#[derive(Clone, Copy, Debug)]
pub struct DegradedAnswer {
    /// The certified `[lower, upper]` bracket (see module docs for the
    /// honest-widening guarantee).
    pub bracket: BoundedAnswer,
    /// Point estimate, always inside the bracket. Midpoint for certified
    /// strategies, learned prediction (clamped) for the fallback.
    pub value: f64,
    /// The strategy that produced the bracket.
    pub strategy: DegradedStrategy,
    /// Confidence in `[0, 1]`: the structural coverage of the certifying
    /// resolution, halved for [`DegradedStrategy::LearnedFallback`]
    /// (its point value is model-based, not certified).
    pub confidence: f64,
}

/// A [`CountSource`] that serves quarantined edges from learned models and
/// everything else from the base store.
struct HybridSource<'a, S: CountSource + ?Sized> {
    base: &'a S,
    learned: &'a LearnedStore,
    quarantined: &'a HashSet<usize>,
}

impl<S: CountSource + ?Sized> CountSource for HybridSource<'_, S> {
    fn count_until(&self, edge: usize, forward: bool, t: Time) -> f64 {
        if self.quarantined.contains(&edge) {
            self.learned.count_until(edge, forward, t)
        } else {
            self.base.count_until(edge, forward, t)
        }
    }

    fn storage_bytes(&self) -> usize {
        self.base.storage_bytes() + self.learned.storage_bytes()
    }
}

/// The degraded-mode answering subsystem: owns the demoted and rerouted
/// graphs, the imputation constraint system, the learned fallback models,
/// and one plan-caching [`QueryEngine`] per graph.
pub struct DegradedAnswerer {
    policy: DegradedPolicy,
    quarantined: HashSet<usize>,
    fine: SampledGraph,
    demoted: SampledGraph,
    rerouted: SampledGraph,
    imputer: Option<Imputer>,
    learned: Option<LearnedStore>,
    fine_engine: QueryEngine,
    demoted_engine: QueryEngine,
    rerouted_engine: QueryEngine,
}

impl std::fmt::Debug for DegradedAnswerer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradedAnswerer")
            .field("quarantined", &self.quarantined.len())
            .field("policy", &self.policy)
            .field("imputer", &self.imputer.as_ref().map(|i| i.num_constraints()))
            .field("learned", &self.learned.is_some())
            .finish()
    }
}

impl DegradedAnswerer {
    /// Builds the subsystem for one quarantine outcome. `fine` is the
    /// pre-quarantine sampled graph; `store` holds the as-ingested forms
    /// (healthy edges trusted, quarantined edges suspect — the learned
    /// fallback fits on the suspect logs, the certified paths never read
    /// them).
    pub fn new(
        sensing: &SensingGraph,
        fine: &SampledGraph,
        quarantined: &[usize],
        store: &FormStore,
        policy: DegradedPolicy,
    ) -> Self {
        let demoted = fine.demote_edges(sensing, quarantined);
        let rerouted = fine.reroute_around_multi(sensing, quarantined, policy.max_ring.max(1));
        // Caps come from both surviving resolutions: the demoted graph is a
        // coarsening of the fine faces (always contains, always sound) and
        // the rerouted graph is finer (caps tighter wherever one of its
        // components provably contains a face) — the imputer takes the
        // tightest containing cap per face.
        let imputer = if policy.impute && !quarantined.is_empty() {
            Some(Imputer::new(sensing, fine, &[&demoted, &rerouted], quarantined))
        } else {
            None
        };
        let learned = policy.learned.filter(|_| !quarantined.is_empty()).map(|kind| {
            let mask: Vec<bool> =
                (0..store.num_edges()).map(|e| quarantined.contains(&e)).collect();
            LearnedStore::fit(store, Some(&mask), kind)
        });
        DegradedAnswerer {
            policy,
            quarantined: quarantined.iter().copied().collect(),
            fine: fine.clone(),
            demoted,
            rerouted,
            imputer,
            learned,
            fine_engine: QueryEngine::new(policy.plan_cache),
            demoted_engine: QueryEngine::new(policy.plan_cache),
            rerouted_engine: QueryEngine::new(policy.plan_cache),
        }
    }

    /// The rerouted graph (for inspection and reuse by callers).
    pub fn rerouted(&self) -> &SampledGraph {
        &self.rerouted
    }

    /// The demoted graph.
    pub fn demoted(&self) -> &SampledGraph {
        &self.demoted
    }

    /// The policy in force.
    pub fn policy(&self) -> &DegradedPolicy {
        &self.policy
    }

    /// The conservation-residual imputer, when the policy enabled it and
    /// the quarantine set admitted at least one face constraint. Callers
    /// use it to certify per-edge flow intervals (e.g. to tighten standing
    /// subscription brackets).
    pub fn imputer(&self) -> Option<&Imputer> {
        self.imputer.as_ref()
    }

    /// Answers one query with the escalation described in the module docs.
    /// `store`'s healthy-edge counts must be exact; its quarantined edges
    /// are never read by a certified path.
    pub fn answer<S: CountSource + ?Sized>(
        &self,
        sensing: &SensingGraph,
        store: &S,
        query: &QueryRegion,
        kind: QueryKind,
    ) -> DegradedAnswer {
        // Strategy 0/1: the best purely structural bracket.
        let demoted_b =
            self.bracket_on(&self.demoted_engine, &self.demoted, sensing, store, query, kind);
        let rerouted_b =
            self.bracket_on(&self.rerouted_engine, &self.rerouted, sensing, store, query, kind);
        let (base, mut strategy) = if better(&rerouted_b, &demoted_b) {
            (rerouted_b, DegradedStrategy::MultiFaceDetour)
        } else {
            (demoted_b, DegradedStrategy::Demoted)
        };
        if self.quarantined.is_empty() {
            strategy = DegradedStrategy::None;
        }

        // Fine-graph resolution: the structural ceiling imputation can reach.
        let (fine_lo, _) = self.fine_engine.plan(sensing, &self.fine, query, Approximation::Lower);
        let (fine_hi, _) = self.fine_engine.plan(sensing, &self.fine, query, Approximation::Upper);
        let fine_cov = if fine_hi.miss {
            0.0
        } else {
            fine_lo.covered_cells() as f64 / fine_hi.covered_cells().max(1) as f64
        };
        let structurally_saturated = !base.miss && base.coverage + 1e-12 >= fine_cov;

        // Strategy 2: certified conservation-interval bracket on the fine
        // graph, intersected with the structural one. The structural upper
        // plans double as all-healthy enclosures for subtraction bounds.
        if !structurally_saturated {
            if let Some(imp) = &self.imputer {
                let (dem_hi, _) =
                    self.demoted_engine.plan(sensing, &self.demoted, query, Approximation::Upper);
                let (rer_hi, _) =
                    self.rerouted_engine.plan(sensing, &self.rerouted, query, Approximation::Upper);
                let mut enclosures: Vec<&QueryPlan> = Vec::new();
                if !dem_hi.miss {
                    enclosures.push(&dem_hi);
                }
                if !rer_hi.miss {
                    enclosures.push(&rer_hi);
                }
                if let Some(sides) =
                    self.imputed_sides(imp, store, &fine_lo, &fine_hi, query, &enclosures, kind)
                {
                    let lower = sides.lower.max(base.lower);
                    let upper = sides.upper.min(base.upper);
                    if upper.is_finite() && lower <= upper + 1e-9 {
                        // Coverage is the certified resolution of the two
                        // sides actually in use: cells the lower bound
                        // resolves over cells the upper bound cannot
                        // distinguish from the region — never below what
                        // the structural bracket already claims.
                        let coverage = (sides.lower_cells as f64 / sides.upper_cells.max(1) as f64)
                            .clamp(0.0, 1.0)
                            .max(base.coverage);
                        let bracket =
                            BoundedAnswer { lower: lower.min(upper), upper, miss: false, coverage };
                        if better(&bracket, &base) {
                            return DegradedAnswer {
                                bracket,
                                value: midpoint(&bracket),
                                strategy: DegradedStrategy::Imputation,
                                confidence: bracket.coverage,
                            };
                        }
                    }
                }
            }
            // Strategy 3: learned point estimate inside the certified
            // structural bracket.
            if let Some(models) = &self.learned {
                let hybrid =
                    HybridSource { base: store, learned: models, quarantined: &self.quarantined };
                let lo_v =
                    if fine_lo.miss { 0.0 } else { evaluate(&hybrid, &fine_lo.boundary, kind) };
                let hi_v =
                    if fine_hi.miss { lo_v } else { evaluate(&hybrid, &fine_hi.boundary, kind) };
                let value = clamp_into(0.5 * (lo_v + hi_v), &base);
                return DegradedAnswer {
                    bracket: base,
                    value,
                    strategy: DegradedStrategy::LearnedFallback,
                    confidence: 0.5 * base.coverage,
                };
            }
        }

        DegradedAnswer {
            value: midpoint(&base),
            bracket: base,
            strategy,
            confidence: base.coverage,
        }
    }

    fn bracket_on<S: CountSource + ?Sized>(
        &self,
        engine: &QueryEngine,
        graph: &SampledGraph,
        sensing: &SensingGraph,
        store: &S,
        query: &QueryRegion,
        kind: QueryKind,
    ) -> BoundedAnswer {
        let (lo, _) = engine.plan(sensing, graph, query, Approximation::Lower);
        let (hi, _) = engine.plan(sensing, graph, query, Approximation::Upper);
        bounds_from_plans(&lo, &hi, store, kind)
    }

    /// Both sides of the fine-graph bracket with quarantined boundary
    /// edges replaced by their certified intervals. A side is *genuine*
    /// when the fine-resolution fold certified a finite value for it;
    /// non-genuine sides fall back to the trivial population bound
    /// (`0` from below, vacuous from above). `None` when the fine upper
    /// plan missed the region entirely.
    #[allow(clippy::too_many_arguments)]
    fn imputed_sides<S: CountSource + ?Sized>(
        &self,
        imp: &Imputer,
        store: &S,
        lo_plan: &QueryPlan,
        hi_plan: &QueryPlan,
        query: &QueryRegion,
        enclosures: &[&QueryPlan],
        kind: QueryKind,
    ) -> Option<ImputedSides> {
        if hi_plan.miss {
            return None;
        }
        let (lo_boundary, lo_miss) = (&lo_plan.boundary, lo_plan.miss);
        let hi_boundary = &hi_plan.boundary;
        let kept: &HashSet<usize> = &query.junctions;
        let query_cells: Vec<usize> = query.junctions.iter().copied().collect();
        // Each population bound is the best of several certified routes,
        // and carries the junction-cell resolution of the route that won:
        //
        // * the boundary fold with per-edge intervals in place of
        //   quarantined terms — tightest when quarantined edges are
        //   *interior* to the region, since they cancel out of the fold;
        // * the face sum — finite whenever every vacuous face has a
        //   containing cap component, no propagation needed;
        // * (upper only) enclosure subtraction — the structural upper
        //   plans are all-healthy regions containing the query, so their
        //   exact population minus certified lowers of disjoint contained
        //   faces bounds the query's population; finite whenever any
        //   structural plan resolves the query at all.
        let pop_at = |t: Time| {
            let ev = imp.evaluate(store, t);
            let fold = |boundary: &[BoundaryEdge]| {
                let (mut lo, mut hi) = (0.0f64, 0.0f64);
                for be in boundary {
                    if self.quarantined.contains(&be.edge) {
                        let (a, b) = match ev.interval(be.edge) {
                            Some(iv) if be.inward_forward => (iv.lo, iv.hi),
                            Some(iv) => (-iv.hi, -iv.lo),
                            None => (f64::NEG_INFINITY, f64::INFINITY),
                        };
                        lo += a;
                        hi += b;
                    } else {
                        let net = store.count_until(be.edge, be.inward_forward, t)
                            - store.count_until(be.edge, !be.inward_forward, t);
                        lo += net;
                        hi += net;
                    }
                }
                (lo, hi)
            };
            let raw_lo = if lo_miss { f64::NEG_INFINITY } else { fold(lo_boundary).0 };
            let sub_rb = ev.region_bounds(&lo_plan.interior);
            let query_rb = ev.region_bounds(&query_cells);
            let super_rb = ev.region_bounds(&hi_plan.interior);

            // Lower: best certified value; on ties, the route with the most
            // informative cells wins — an exact "this face is empty" is real
            // resolution even when the numeric lower stays 0.
            let mut lower =
                (raw_lo.max(0.0), if raw_lo.is_finite() { lo_plan.interior.len() } else { 0 });
            for rb in [&sub_rb, &query_rb] {
                if rb.lower > lower.0 || (rb.lower >= lower.0 && rb.informative_cells > lower.1) {
                    lower = (rb.lower, rb.informative_cells);
                }
            }

            // Upper: tightest certified value; on ties, the route whose
            // certificate confines the unknown mass to fewer cells wins.
            let fold_hi = fold(hi_boundary).1;
            let mut upper = (fold_hi, hi_plan.interior.len());
            for (rb, cells) in [(&super_rb, hi_plan.interior.len()), (&query_rb, query_cells.len())]
            {
                if rb.upper < upper.0 || (rb.upper <= upper.0 && cells < upper.1) {
                    upper = (rb.upper, cells);
                }
            }
            for ep in enclosures {
                let pop_e = evaluate(store, &ep.boundary, QueryKind::Snapshot(t));
                let (enc_hi, enc_cells) = ev.enclosure_upper(pop_e, &ep.interior, kept);
                if enc_hi < upper.0 || (enc_hi <= upper.0 && enc_cells < upper.1) {
                    upper = (enc_hi, enc_cells);
                }
            }
            (lower, upper)
        };
        let sides = match kind {
            QueryKind::Snapshot(t) => {
                let (lower, upper) = pop_at(t);
                ImputedSides {
                    lower: lower.0,
                    lower_cells: lower.1,
                    upper: upper.0,
                    upper_cells: upper.1,
                }
            }
            QueryKind::Transient(t0, t1) => {
                let (lower0, upper0) = pop_at(t0);
                let (lower1, upper1) = pop_at(t1);
                ImputedSides {
                    lower: lower1.0 - upper0.0,
                    lower_cells: lower1.1.min(upper0.1),
                    upper: upper1.0 - lower0.0,
                    upper_cells: upper1.1.min(lower0.1),
                }
            }
            QueryKind::Static(t0, t1) => {
                let (_, upper0) = pop_at(t0);
                let (_, upper1) = pop_at(t1);
                // The static lower estimator folds raw counts, which a
                // quarantined lower boundary would poison — fall back to 0
                // there; otherwise it is the ordinary certified bound.
                let genuine =
                    !lo_miss && !lo_boundary.iter().any(|be| self.quarantined.contains(&be.edge));
                let lower = if genuine {
                    static_interval_lower_bound(store, lo_boundary, t0, t1).max(0.0)
                } else {
                    0.0
                };
                let upper = if upper0.0 <= upper1.0 { upper0 } else { upper1 };
                ImputedSides {
                    lower,
                    lower_cells: if genuine { lo_plan.interior.len() } else { 0 },
                    upper: upper.0.max(0.0),
                    upper_cells: upper.1,
                }
            }
        };
        Some(sides)
    }
}

/// Per-side result of bounding the query population through the certified
/// imputation routes. `*_cells` is the junction-cell resolution of the
/// route that produced each side (0 when only the trivial bound held).
struct ImputedSides {
    lower: f64,
    lower_cells: usize,
    upper: f64,
    upper_cells: usize,
}

/// Coverage first, then width: is `a` a strictly more useful bracket?
fn better(a: &BoundedAnswer, b: &BoundedAnswer) -> bool {
    if a.miss != b.miss {
        return b.miss;
    }
    if (a.coverage - b.coverage).abs() > 1e-12 {
        return a.coverage > b.coverage;
    }
    a.width() < b.width()
}

fn midpoint(b: &BoundedAnswer) -> f64 {
    if b.lower.is_finite() && b.upper.is_finite() {
        0.5 * (b.lower + b.upper)
    } else if b.lower.is_finite() {
        b.lower
    } else if b.upper.is_finite() {
        b.upper
    } else {
        0.0
    }
}

fn clamp_into(v: f64, b: &BoundedAnswer) -> f64 {
    let v = if v.is_finite() { v } else { 0.0 };
    v.clamp(
        if b.lower.is_finite() { b.lower } else { f64::MIN },
        if b.upper.is_finite() { b.upper } else { f64::MAX },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{answer_with_bounds, quarantine_and_repair, RepairConfig};
    use crate::sampled::Connectivity;
    use crate::tracker::{ingest, ingest_with_faults, Tracked};
    use stq_mobility::gen::delaunay_city;
    use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};
    use stq_net::{SensorFault, SensorFaultKind, SensorFaultPlan};

    struct Fixture {
        sensing: SensingGraph,
        graph: SampledGraph,
        trajs: Vec<stq_mobility::Trajectory>,
        horizon: (f64, f64),
    }

    fn fixture() -> Fixture {
        let net = delaunay_city(120, 0.15, 6, 23).unwrap();
        let sensing = SensingGraph::new(net);
        let cfg =
            TrajectoryConfig { speed: 8.0, pause: 20.0, duration: 3_000.0, exit_probability: 0.3 };
        let mix = WorkloadMix { random_waypoint: 15, commuter: 10, transit: 8 };
        let trajs = generate_mix(sensing.road(), mix, cfg, 77);
        let cands = sensing.sensor_candidates();
        let m = (cands.len() / 4).max(3);
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::QuadTree, &cands, m, 5);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let graph = SampledGraph::from_sensors(&sensing, &faces, Connectivity::Triangulation);
        Fixture { sensing, graph, trajs, horizon: (0.0, 3_000.0) }
    }

    /// Ingest with ~20% of busy monitored sensors dead, then mirror the
    /// serving pipeline: heartbeats demote the dead set first, the audit
    /// runs on the survivors, and only hard-evidence flags and rewritten
    /// logs are distrusted on top. Silence-only flags stay trusted — their
    /// logs are untouched — exactly as `sensor_failure_sweep` serves.
    fn faulted(f: &Fixture) -> (Tracked, Vec<usize>) {
        let clean = ingest(&f.sensing, &f.trajs).store;
        let busy: Vec<usize> = (0..clean.num_edges())
            .filter(|&e| {
                f.graph.monitored()[e]
                    && clean.form(e).total(true) + clean.form(e).total(false) >= 4
            })
            .collect();
        let dead_edges: Vec<usize> = busy.iter().copied().step_by(5).collect();
        let dead: Vec<SensorFault> = dead_edges
            .iter()
            .map(|&edge| SensorFault {
                edge,
                kind: SensorFaultKind::Dead,
                from: f64::NEG_INFINITY,
                until: f64::INFINITY,
            })
            .collect();
        let plan = SensorFaultPlan::from_faults(3, dead);
        let mut tracked = ingest_with_faults(&f.sensing, &f.trajs, &plan);
        let g_live = f.graph.demote_edges(&f.sensing, &dead_edges);
        let out = quarantine_and_repair(
            &f.sensing,
            &g_live,
            &mut tracked.store,
            f.horizon,
            &RepairConfig::default(),
        );
        let silence_only = |e: usize| {
            out.report.verdict(e).is_some_and(|v| {
                v.evidence.iter().all(|ev| {
                    matches!(
                        ev,
                        stq_forms::Evidence::SilentGap { .. }
                            | stq_forms::Evidence::SilentSibling { .. }
                    )
                })
            })
        };
        let mut untrusted: Vec<usize> = out
            .quarantined
            .iter()
            .copied()
            .filter(|&e| !silence_only(e))
            .chain(out.repaired.iter().map(|r| r.edge))
            .chain(dead_edges.iter().copied())
            .collect();
        untrusted.sort_unstable();
        untrusted.dedup();
        (tracked, untrusted)
    }

    /// Interior rects (span 20% of the bbox) that the fine graph resolves;
    /// the escalation has something to win back on these.
    fn queries(f: &Fixture) -> Vec<(QueryRegion, QueryKind)> {
        let bb = f.sensing.road().bbox();
        let (w, h) = (bb.max.x - bb.min.x, bb.max.y - bb.min.y);
        let mut out = Vec::new();
        for (i, (cx, cy)) in
            [(0.4, 0.7), (0.5, 0.7), (0.6, 0.6), (0.6, 0.3), (0.5, 0.6)].iter().enumerate()
        {
            let rect = stq_geom::Rect::from_corners(
                stq_geom::Point { x: bb.min.x + (cx - 0.1) * w, y: bb.min.y + (cy - 0.1) * h },
                stq_geom::Point { x: bb.min.x + (cx + 0.1) * w, y: bb.min.y + (cy + 0.1) * h },
            );
            let q = QueryRegion::from_rect(&f.sensing, rect);
            let kind = match i % 3 {
                0 => QueryKind::Snapshot(1_500.0),
                1 => QueryKind::Transient(400.0, 2_200.0),
                _ => QueryKind::Static(400.0, 2_200.0),
            };
            out.push((q, kind));
        }
        out
    }

    fn oracle_truth(tracked: &Tracked, q: &QueryRegion, kind: QueryKind) -> f64 {
        let inside = |j: usize| q.junctions.contains(&j);
        match kind {
            QueryKind::Snapshot(t) => tracked.oracle.snapshot_count(&inside, t) as f64,
            QueryKind::Transient(t0, t1) => tracked.oracle.transient_count(&inside, t0, t1) as f64,
            QueryKind::Static(t0, t1) => {
                tracked.oracle.static_interval_count(&inside, t0, t1) as f64
            }
        }
    }

    #[test]
    fn degraded_answers_are_sound_and_finite() {
        let f = fixture();
        let (tracked, quarantined) = faulted(&f);
        assert!(!quarantined.is_empty(), "the fault plan must force quarantine");
        let ans = DegradedAnswerer::new(
            &f.sensing,
            &f.graph,
            &quarantined,
            &tracked.store,
            DegradedPolicy::default(),
        );
        for (q, kind) in queries(&f) {
            let a = ans.answer(&f.sensing, &tracked.store, &q, kind);
            let truth = oracle_truth(&tracked, &q, kind);
            assert!(
                a.bracket.contains(truth),
                "{kind:?} [{}]: oracle {truth} outside [{}, {}]",
                a.strategy.label(),
                a.bracket.lower,
                a.bracket.upper
            );
            if !a.bracket.miss {
                assert!(a.bracket.width().is_finite(), "non-miss brackets stay finite");
                assert!(a.value >= a.bracket.lower - 1e-9 && a.value <= a.bracket.upper + 1e-9);
            }
            assert!((0.0..=1.0).contains(&a.confidence));
            assert!((0.0..=1.0).contains(&a.bracket.coverage));
        }
    }

    #[test]
    fn escalation_never_loses_to_plain_demotion() {
        let f = fixture();
        let (tracked, quarantined) = faulted(&f);
        let ans = DegradedAnswerer::new(
            &f.sensing,
            &f.graph,
            &quarantined,
            &tracked.store,
            DegradedPolicy::default(),
        );
        let demoted = f.graph.demote_edges(&f.sensing, &quarantined);
        let (mut gained, mut total) = (0usize, 0usize);
        for (q, kind) in queries(&f) {
            let a = ans.answer(&f.sensing, &tracked.store, &q, kind);
            let plain = answer_with_bounds(&f.sensing, &demoted, &tracked.store, &q, kind);
            assert!(
                a.bracket.coverage >= plain.coverage - 1e-12,
                "degraded coverage {} below demoted {}",
                a.bracket.coverage,
                plain.coverage
            );
            if a.bracket.coverage > plain.coverage + 1e-12 {
                gained += 1;
            }
            total += 1;
        }
        assert!(gained > 0, "escalation improved none of {total} queries");
    }

    #[test]
    fn disabled_imputation_falls_back_to_learned_or_structural() {
        let f = fixture();
        let (tracked, quarantined) = faulted(&f);
        let policy = DegradedPolicy { impute: false, ..DegradedPolicy::default() };
        let ans = DegradedAnswerer::new(&f.sensing, &f.graph, &quarantined, &tracked.store, policy);
        for (q, kind) in queries(&f) {
            let a = ans.answer(&f.sensing, &tracked.store, &q, kind);
            assert_ne!(a.strategy, DegradedStrategy::Imputation);
            let truth = oracle_truth(&tracked, &q, kind);
            assert!(a.bracket.contains(truth));
        }
    }

    #[test]
    fn strategy_codes_round_trip() {
        for s in [
            DegradedStrategy::None,
            DegradedStrategy::Demoted,
            DegradedStrategy::MultiFaceDetour,
            DegradedStrategy::Imputation,
            DegradedStrategy::LearnedFallback,
        ] {
            assert_eq!(DegradedStrategy::from_code(s.code()), s);
        }
    }

    #[test]
    fn empty_quarantine_reports_strategy_none() {
        let f = fixture();
        let tracked = ingest(&f.sensing, &f.trajs);
        let ans = DegradedAnswerer::new(
            &f.sensing,
            &f.graph,
            &[],
            &tracked.store,
            DegradedPolicy::default(),
        );
        let (q, kind) = queries(&f).remove(0);
        let a = ans.answer(&f.sensing, &tracked.store, &q, kind);
        assert_eq!(a.strategy, DegradedStrategy::None);
        let plain = answer_with_bounds(&f.sensing, &f.graph, &tracked.store, &q, kind);
        assert_eq!(a.bracket.coverage, plain.coverage);
    }
}
