//! Ingestion: trajectories → crossing events → tracking forms.
//!
//! Vertex–edge duality (paper §4.7.1): an object traversing road edge
//! `(u, v)` crosses that edge's dual sensing link, leaving junction cell `u`
//! and entering junction cell `v`. The tracker converts timed junction walks
//! into per-edge directed crossing events, globally time-sorted so each
//! sensor's log stays monotone, and feeds both the identifier-free
//! [`FormStore`] and (optionally) the test oracle.

use crate::sensing::SensingGraph;
use stq_forms::{FormStore, OracleTracker, Time, TrackingForm};
use stq_mobility::Trajectory;
use stq_net::SensorFaultPlan;

/// One directed crossing event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Crossing {
    /// When the crossing happened.
    pub time: Time,
    /// The road edge crossed (= dual sensing link id).
    pub edge: usize,
    /// True when traversed tail → head (the edge's construction direction).
    pub forward: bool,
}

impl Crossing {
    /// Bytes of the wire encoding: `edge u64 LE + flags u8 + time bits u64 LE`.
    pub const ENCODED_LEN: usize = 17;

    /// Serializes into `out` (exactly [`Self::ENCODED_LEN`] bytes). The time
    /// is stored as raw `f64` bits, so a decode is bit-identical — the
    /// property crash recovery needs to rebuild byte-identical state.
    pub fn encode_into(&self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN);
        out[0..8].copy_from_slice(&(self.edge as u64).to_le_bytes());
        out[8] = self.forward as u8;
        out[9..17].copy_from_slice(&self.time.to_bits().to_le_bytes());
    }

    /// Decodes an [`Self::encode_into`] image. Returns `None` for a wrong
    /// length, an out-of-range flag byte, or a non-finite time — all
    /// impossible in records this crate wrote, hence evidence of corruption.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let edge = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let forward = match bytes[8] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let time = f64::from_bits(u64::from_le_bytes(bytes[9..17].try_into().unwrap()));
        if !time.is_finite() || usize::try_from(edge).is_err() {
            return None;
        }
        Some(Crossing { time, edge: edge as usize, forward })
    }
}

/// Extracts the crossing events of one trajectory.
///
/// # Panics
/// If consecutive visited junctions are not adjacent in the network (the
/// trajectory is not a valid walk).
pub fn crossings_of(sensing: &SensingGraph, traj: &Trajectory) -> Vec<Crossing> {
    let road = sensing.road();
    let mut out = Vec::with_capacity(traj.visits.len().saturating_sub(1));
    for w in traj.visits.windows(2) {
        let (_, u) = w[0];
        let (t, v) = w[1];
        if u == v {
            continue;
        }
        let edge = road
            .edge_between(u, v)
            .unwrap_or_else(|| panic!("trajectory step {u}→{v} is not a road"));
        out.push(Crossing { time: t, edge, forward: road.is_forward_from(edge, u) });
    }
    out
}

/// The ingestion result: the exact form store plus the oracle ground truth.
#[derive(Debug)]
pub struct Tracked {
    /// Identifier-free per-edge crossing logs (what real sensors hold).
    pub store: FormStore,
    /// Identifier-based ground truth (tests/benchmarks only).
    pub oracle: OracleTracker,
    /// Number of crossing events ingested.
    pub num_crossings: usize,
}

/// Ingests a workload of trajectories.
///
/// Events are globally sorted by time (ties broken by input order) before
/// being appended to each edge's log, matching the monotone-append contract
/// of physical sensors.
pub fn ingest(sensing: &SensingGraph, trajectories: &[Trajectory]) -> Tracked {
    let mut events: Vec<Crossing> = Vec::new();
    for traj in trajectories {
        events.extend(crossings_of(sensing, traj));
    }
    events.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());

    let mut store = FormStore::new(sensing.num_edges());
    for c in &events {
        store.record(c.edge, c.forward, c.time);
    }

    let mut oracle = OracleTracker::new();
    for traj in trajectories {
        for &(t, j) in &traj.visits {
            oracle.record_arrival(traj.id, j, t);
        }
    }

    Tracked { store, oracle, num_crossings: events.len() }
}

/// Ingests a workload through faulty sensors.
///
/// Each crossing passes through `plan.corrupt` *before* being logged, so the
/// resulting [`FormStore`] really contains corrupted data: dead sensors leave
/// gaps, lossy ones miss events, duplicating ones log twice, flipped ones
/// swap direction, and skewed clocks produce out-of-order timestamps. The
/// sensor writes its log in true-event order (it cannot sort by a clock it
/// does not trust), so skew shows up as non-monotone sequences — exactly the
/// signature the integrity auditor looks for. The oracle is built from the
/// trajectories themselves and stays exact: it is the ground truth faulty
/// serving is judged against.
pub fn ingest_with_faults(
    sensing: &SensingGraph,
    trajectories: &[Trajectory],
    plan: &SensorFaultPlan,
) -> Tracked {
    let mut events: Vec<Crossing> = Vec::new();
    for traj in trajectories {
        events.extend(crossings_of(sensing, traj));
    }
    events.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap());

    // Per-edge raw sequences, appended in arrival order. Healthy edges end
    // up monotone exactly as `ingest` would produce; corrupted ones don't.
    let mut fwd: Vec<Vec<Time>> = vec![Vec::new(); sensing.num_edges()];
    let mut bwd: Vec<Vec<Time>> = vec![Vec::new(); sensing.num_edges()];
    let mut ordinal = vec![0u64; sensing.num_edges()];
    let mut recorded = 0usize;
    for c in &events {
        let fate = plan.corrupt(c.edge, c.forward, c.time, ordinal[c.edge]);
        ordinal[c.edge] += 1;
        for (forward, t) in fate.event.into_iter().chain(fate.extra) {
            let seq = if forward { &mut fwd[c.edge] } else { &mut bwd[c.edge] };
            seq.push(t);
            recorded += 1;
        }
    }
    let mut store = FormStore::new(sensing.num_edges());
    for e in 0..sensing.num_edges() {
        store.set_form(
            e,
            TrackingForm::from_sequences(std::mem::take(&mut fwd[e]), std::mem::take(&mut bwd[e])),
        );
    }

    let mut oracle = OracleTracker::new();
    for traj in trajectories {
        for &(t, j) in &traj.visits {
            oracle.record_arrival(traj.id, j, t);
        }
    }

    Tracked { store, oracle, num_crossings: recorded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use stq_forms::{snapshot_count, transient_count};
    use stq_mobility::gen::perturbed_grid;
    use stq_mobility::trajectory::{generate_mix, TrajectoryConfig, WorkloadMix};

    fn setup() -> (SensingGraph, Tracked) {
        let net = perturbed_grid(6, 6, 0.15, 0.1, 4, 5).unwrap();
        let sensing = SensingGraph::new(net);
        let cfg =
            TrajectoryConfig { speed: 4.0, pause: 15.0, duration: 2_000.0, exit_probability: 0.4 };
        let mix = WorkloadMix { random_waypoint: 12, commuter: 8, transit: 6 };
        let trajs = generate_mix(sensing.road(), mix, cfg, 31);
        let tracked = ingest(&sensing, &trajs);
        (sensing, tracked)
    }

    /// The central exactness theorem: on the fully monitored graph, the
    /// identifier-free snapshot equals the identifier-based oracle count for
    /// arbitrary regions and times.
    #[test]
    fn forms_match_oracle_snapshots() {
        let (sensing, tracked) = setup();
        let all: Vec<usize> = sensing.road().junctions().collect();
        for (i, chunk) in all.chunks(7).enumerate() {
            let region: HashSet<usize> = chunk.iter().copied().collect();
            let boundary = sensing.boundary_of(&region, None);
            for &t in &[0.0, 250.0, 900.0, 1500.0, 2500.0] {
                let formed = snapshot_count(&tracked.store, &boundary, t);
                let truth = tracked.oracle.snapshot_count(&|j| region.contains(&j), t) as f64;
                assert_eq!(formed, truth, "region #{i} at t={t}");
            }
        }
    }

    #[test]
    fn forms_match_oracle_transient() {
        let (sensing, tracked) = setup();
        let region: HashSet<usize> = sensing.road().junctions().take(9).collect();
        let boundary = sensing.boundary_of(&region, None);
        for &(t0, t1) in &[(0.0, 500.0), (100.0, 1200.0), (800.0, 2000.0)] {
            let formed = transient_count(&tracked.store, &boundary, t0, t1);
            let truth = tracked.oracle.transient_count(&|j| region.contains(&j), t0, t1) as f64;
            assert_eq!(formed, truth, "window [{t0},{t1}]");
        }
    }

    #[test]
    fn crossing_extraction_is_consistent() {
        let (_sensing, tracked) = setup();
        assert!(tracked.num_crossings > 0);
        assert_eq!(tracked.store.total_events(), tracked.num_crossings);
    }

    #[test]
    fn whole_domain_population_balances() {
        // Region = every junction: the only boundary edges are the ramps, so
        // the count equals objects currently inside the network.
        let (sensing, tracked) = setup();
        let region: HashSet<usize> = sensing.road().junctions().collect();
        let boundary = sensing.boundary_of(&region, None);
        for be in &boundary {
            assert!(sensing.road().ramps().contains(&be.edge));
        }
        let t = 1_000.0;
        let formed = snapshot_count(&tracked.store, &boundary, t);
        let truth = tracked.oracle.snapshot_count(&|j| region.contains(&j), t) as f64;
        assert_eq!(formed, truth);
        assert!(formed >= 0.0);
    }

    #[test]
    #[should_panic(expected = "not a road")]
    fn invalid_walk_panics() {
        let (sensing, _) = setup();
        let bad = Trajectory { id: 9, visits: vec![(0.0, 0), (1.0, 35)] };
        let _ = crossings_of(&sensing, &bad);
    }
}
