//! SVG rendering of sensing graphs and deployments.
//!
//! Reproduction of figures like the paper's Fig. 4 (sampling methods on the
//! Beijing network) and Fig. 6 (sampled-graph construction) needs pictures;
//! this module renders a scene to a standalone SVG string: the road
//! network, sensors, a sampled deployment's monitored links and
//! communication sensors, and query rectangles.

use std::fmt::Write as _;

use crate::sampled::SampledGraph;
use crate::sensing::SensingGraph;
use stq_geom::Rect;

/// What to draw, layered bottom-up.
#[derive(Debug, Default)]
pub struct Scene<'a> {
    /// Base sensing graph: roads (grey) and sensors (small dots).
    pub sensing: Option<&'a SensingGraph>,
    /// A deployment: monitored links (blue) + communication sensors (red).
    pub sampled: Option<(&'a SensingGraph, &'a SampledGraph)>,
    /// Query rectangles (green outlines).
    pub queries: Vec<Rect>,
    /// Canvas width in pixels (height follows the aspect ratio).
    pub width: f64,
}

impl<'a> Scene<'a> {
    /// A scene over a sensing graph.
    pub fn new(sensing: &'a SensingGraph) -> Self {
        Scene { sensing: Some(sensing), sampled: None, queries: Vec::new(), width: 800.0 }
    }

    /// Adds a sampled deployment overlay.
    pub fn with_sampled(mut self, sensing: &'a SensingGraph, g: &'a SampledGraph) -> Self {
        self.sampled = Some((sensing, g));
        self
    }

    /// Adds a query rectangle.
    pub fn with_query(mut self, rect: Rect) -> Self {
        self.queries.push(rect);
        self
    }

    /// Renders to a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let bb = self
            .sensing
            .map(|s| s.road().bbox())
            .or_else(|| self.sampled.map(|(s, _)| s.road().bbox()))
            .unwrap_or_else(|| {
                Rect::from_corners(stq_geom::Point::ORIGIN, stq_geom::Point::new(1.0, 1.0))
            })
            .inflated(1.0);
        let scale = self.width / bb.width().max(1e-9);
        let height = bb.height() * scale;
        let tx = move |x: f64| (x - bb.min.x) * scale;
        // SVG y grows downward; flip so north is up.
        let ty = move |y: f64| height - (y - bb.min.y) * scale;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            self.width, height, self.width, height
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

        // Roads.
        if let Some(s) = self.sensing {
            let emb = s.road().embedding();
            let _ = writeln!(svg, r##"<g stroke="#bbbbbb" stroke-width="1" fill="none">"##);
            for e in 0..emb.num_edges() {
                let (u, v) = emb.edge_endpoints(e);
                if let (Some(p), Some(q)) = (emb.position(u), emb.position(v)) {
                    let _ = writeln!(
                        svg,
                        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/>"#,
                        tx(p.x),
                        ty(p.y),
                        tx(q.x),
                        ty(q.y)
                    );
                }
            }
            let _ = writeln!(svg, "</g>");
            // Sensors.
            let _ = writeln!(svg, r##"<g fill="#999999">"##);
            for (p, _) in s.sensor_candidates() {
                let _ =
                    writeln!(svg, r#"<circle cx="{:.1}" cy="{:.1}" r="1.5"/>"#, tx(p.x), ty(p.y));
            }
            let _ = writeln!(svg, "</g>");
        }

        // Sampled deployment.
        if let Some((s, g)) = self.sampled {
            let _ = writeln!(svg, r##"<g stroke="#1f6fd0" stroke-width="2" fill="none">"##);
            for (e, &m) in g.monitored().iter().enumerate() {
                if !m {
                    continue;
                }
                let (a, b) = s.dual().edge_faces[e];
                if let (Some(p), Some(q)) = (s.sensor_pos(a), s.sensor_pos(b)) {
                    let _ = writeln!(
                        svg,
                        r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/>"#,
                        tx(p.x),
                        ty(p.y),
                        tx(q.x),
                        ty(q.y)
                    );
                }
            }
            let _ = writeln!(svg, "</g>");
            let _ = writeln!(svg, r##"<g fill="#d03b2f">"##);
            for &f in g.sensors() {
                if let Some(p) = s.sensor_pos(f) {
                    let _ = writeln!(
                        svg,
                        r#"<circle cx="{:.1}" cy="{:.1}" r="3.5"/>"#,
                        tx(p.x),
                        ty(p.y)
                    );
                }
            }
            let _ = writeln!(svg, "</g>");
        }

        // Query rectangles.
        if !self.queries.is_empty() {
            let _ = writeln!(svg, r##"<g stroke="#2c9b44" stroke-width="2.5" fill="none">"##);
            for q in &self.queries {
                let _ = writeln!(
                    svg,
                    r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}"/>"#,
                    tx(q.min.x),
                    ty(q.max.y),
                    q.width() * scale,
                    q.height() * scale
                );
            }
            let _ = writeln!(svg, "</g>");
        }

        svg.push_str("</svg>\n");
        svg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampled::Connectivity;
    use crate::scenario::{Scenario, ScenarioConfig};
    use stq_geom::Point;
    use stq_mobility::trajectory::WorkloadMix;

    fn setup() -> (Scenario, SampledGraph) {
        let s = Scenario::build(ScenarioConfig {
            junctions: 100,
            mix: WorkloadMix { random_waypoint: 2, commuter: 0, transit: 0 },
            seed: 3,
            ..Default::default()
        });
        let cands = s.sensing.sensor_candidates();
        let ids = stq_sampling::sample(stq_sampling::SamplingMethod::Uniform, &cands, 12, 1);
        let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
        let g = SampledGraph::from_sensors(&s.sensing, &faces, Connectivity::Triangulation);
        (s, g)
    }

    #[test]
    fn renders_valid_svg_document() {
        let (s, g) = setup();
        let svg = Scene::new(&s.sensing)
            .with_sampled(&s.sensing, &g)
            .with_query(Rect::centered(Point::new(50.0, 50.0), 30.0, 20.0))
            .to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Contains all layers.
        assert!(svg.contains("#bbbbbb"), "roads layer");
        assert!(svg.contains("#1f6fd0"), "monitored links layer");
        assert!(svg.contains("#d03b2f"), "communication sensors layer");
        assert!(svg.contains("#2c9b44"), "query layer");
        // One circle per communication sensor with a position.
        let reds = svg.split("#d03b2f").nth(1).unwrap();
        let red_circles = reds.split("</g>").next().unwrap().matches("<circle").count();
        assert_eq!(red_circles, g.sensors().len());
    }

    #[test]
    fn coordinates_inside_canvas() {
        let (s, _) = setup();
        let svg = Scene::new(&s.sensing).to_svg();
        // Extract the canvas size.
        let w: f64 =
            svg.split("width=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
        let h: f64 =
            svg.split("height=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
        for part in svg.split("cx=\"").skip(1) {
            let x: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!(x >= -1.0 && x <= w + 1.0);
        }
        for part in svg.split("cy=\"").skip(1) {
            let y: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!(y >= -1.0 && y <= h + 1.0);
        }
    }

    #[test]
    fn empty_scene_is_still_valid() {
        let scene = Scene { sensing: None, sampled: None, queries: vec![], width: 100.0 };
        let svg = scene.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("</svg>"));
    }
}
