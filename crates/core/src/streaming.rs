//! Online ingestion and streaming learned stores.
//!
//! The batch [`crate::tracker::ingest`] sorts all crossings up front; a real
//! deployment receives them continuously. [`StreamTracker`] accepts events
//! in near-real-time order — tolerating bounded out-of-order arrival, as
//! radio networks produce — by buffering events inside a watermark window
//! and releasing them in order. Released events feed either the exact
//! [`stq_forms::FormStore`] or a [`StreamingLearnedStore`] of bounded
//! per-edge memory
//! built from `stq_learned::BufferedSeries` (the paper's buffer-and-flush
//! update scheme, §4.8).

use crate::tracker::Crossing;
use stq_forms::{CountSource, Time};
use stq_learned::{BufferedSeries, RegressorKind};

/// Accepts crossings with bounded time skew and releases them in order.
///
/// Events may arrive up to `max_skew` seconds late relative to the newest
/// event seen. Older arrivals are rejected (returned as errors) rather than
/// silently reordered — the caller decides whether to drop or crash.
#[derive(Debug)]
pub struct StreamTracker {
    max_skew: Time,
    /// Buffered events, kept sorted by time (newest last).
    pending: Vec<Crossing>,
    watermark: Time,
    stats: StreamStats,
}

/// Ingestion accounting of one [`StreamTracker`] — surfaced through the
/// runtime's `Metrics` so silently rejected traffic is visible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events accepted into the watermark buffer.
    pub accepted: u64,
    /// Events rejected for arriving behind the watermark.
    pub late_dropped: u64,
    /// Exact-duplicate crossings suppressed by the idempotency guard.
    pub duplicates_suppressed: u64,
}

/// Rejected late event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LateEvent(pub Crossing);

impl std::fmt::Display for LateEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event at t={} on edge {} arrived behind the watermark", self.0.time, self.0.edge)
    }
}

impl std::error::Error for LateEvent {}

impl StreamTracker {
    /// Creates a tracker tolerating `max_skew` seconds of reordering.
    pub fn new(max_skew: Time) -> Self {
        assert!(max_skew >= 0.0, "skew must be non-negative");
        StreamTracker {
            max_skew,
            pending: Vec::new(),
            watermark: f64::NEG_INFINITY,
            stats: StreamStats::default(),
        }
    }

    /// Offers one event; returns the events *released* by the advancing
    /// watermark (in global time order), or an error if the event is older
    /// than the watermark allows. Rejections and suppressed duplicates are
    /// counted in [`StreamTracker::stats`].
    pub fn offer(&mut self, ev: Crossing) -> Result<Vec<Crossing>, LateEvent> {
        if ev.time < self.watermark {
            self.stats.late_dropped += 1;
            return Err(LateEvent(ev));
        }
        // Idempotency guard: radio links retransmit, and a retransmitted
        // crossing is byte-identical. Suppress exact duplicates still inside
        // the watermark window (older duplicates are already released and
        // beyond reach — bounded-memory streaming cannot dedup forever).
        let idx = self.pending.partition_point(|e| e.time <= ev.time);
        let first_tie = self.pending[..idx].partition_point(|e| e.time < ev.time);
        if self.pending[first_tie..idx].contains(&ev) {
            self.stats.duplicates_suppressed += 1;
            return Ok(Vec::new());
        }
        self.stats.accepted += 1;
        self.pending.insert(idx, ev);
        let newest = self.pending.last().map(|e| e.time).unwrap_or(ev.time);
        self.watermark = self.watermark.max(newest - self.max_skew);
        let release_upto = self.pending.partition_point(|e| e.time < self.watermark);
        Ok(self.pending.drain(..release_upto).collect())
    }

    /// Flushes every buffered event (end of stream).
    pub fn finish(&mut self) -> Vec<Crossing> {
        self.watermark = f64::INFINITY;
        std::mem::take(&mut self.pending)
    }

    /// Events currently held back by the watermark.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Ingestion accounting so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// A bounded-memory [`CountSource`]: per edge and direction, a
/// [`BufferedSeries`] (frozen model + bounded buffer) instead of the full
/// timestamp log.
pub struct StreamingLearnedStore {
    series: Vec<(BufferedSeries, BufferedSeries)>,
}

impl std::fmt::Debug for StreamingLearnedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingLearnedStore").field("edges", &self.series.len()).finish()
    }
}

impl StreamingLearnedStore {
    /// Creates a store for `num_edges` edges with the given model family and
    /// per-direction buffer capacity.
    pub fn new(num_edges: usize, kind: RegressorKind, buffer: usize) -> Self {
        StreamingLearnedStore {
            series: (0..num_edges)
                .map(|_| (BufferedSeries::new(kind, buffer), BufferedSeries::new(kind, buffer)))
                .collect(),
        }
    }

    /// Records one crossing (must be time-monotone per edge+direction, which
    /// feeding from a [`StreamTracker`] guarantees globally).
    pub fn record(&mut self, ev: Crossing) {
        let (fwd, bwd) = &mut self.series[ev.edge];
        if ev.forward {
            fwd.push(ev.time);
        } else {
            bwd.push(ev.time);
        }
    }

    /// Total events absorbed.
    pub fn total_events(&self) -> usize {
        self.series.iter().map(|(f, b)| f.total() + b.total()).sum()
    }
}

impl CountSource for StreamingLearnedStore {
    fn count_until(&self, edge: usize, forward: bool, t: Time) -> f64 {
        let (fwd, bwd) = &self.series[edge];
        if forward {
            fwd.count_until(t)
        } else {
            bwd.count_until(t)
        }
    }

    fn storage_bytes(&self) -> usize {
        self.series.iter().map(|(f, b)| f.size_bytes() + b.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stq_forms::FormStore;

    fn ev(time: Time, edge: usize, forward: bool) -> Crossing {
        Crossing { time, edge, forward }
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut t = StreamTracker::new(5.0);
        let mut released = Vec::new();
        for k in 0..20 {
            released.extend(t.offer(ev(k as f64, k % 3, true)).unwrap());
        }
        released.extend(t.finish());
        assert_eq!(released.len(), 20);
        assert!(released.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn bounded_reordering_is_fixed() {
        let mut t = StreamTracker::new(5.0);
        let times = [0.0, 3.0, 1.0, 4.0, 2.0, 10.0, 8.0, 12.0, 11.0];
        let mut released = Vec::new();
        for &x in &times {
            released.extend(t.offer(ev(x, 0, true)).unwrap());
        }
        released.extend(t.finish());
        assert_eq!(released.len(), times.len());
        assert!(released.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn too_late_rejected() {
        let mut t = StreamTracker::new(2.0);
        t.offer(ev(0.0, 0, true)).unwrap();
        t.offer(ev(10.0, 0, true)).unwrap(); // watermark jumps to 8
        assert!(t.offer(ev(3.0, 0, true)).is_err());
        assert!(t.offer(ev(8.0, 0, true)).is_ok()); // exactly at watermark ok
    }

    #[test]
    fn watermark_holds_recent_events() {
        let mut t = StreamTracker::new(100.0);
        for k in 0..10 {
            let out = t.offer(ev(k as f64, 0, true)).unwrap();
            assert!(out.is_empty(), "all events within skew must be held");
        }
        assert_eq!(t.pending(), 10);
        assert_eq!(t.finish().len(), 10);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn streaming_store_tracks_counts() {
        let mut store = StreamingLearnedStore::new(4, RegressorKind::PiecewiseLinear(16), 8);
        let mut tracker = StreamTracker::new(3.0);
        // A jittered stream across 4 edges.
        let mut events = Vec::new();
        for k in 0..200 {
            let base = k as f64;
            events.push(ev(base + ((k * 7) % 3) as f64 * 0.3, k % 4, k % 2 == 0));
        }
        for &e in &events {
            for r in tracker.offer(e).unwrap() {
                store.record(r);
            }
        }
        for r in tracker.finish() {
            store.record(r);
        }
        assert_eq!(store.total_events(), 200);
        // Each edge saw 50 events; mid-stream estimates must be close.
        for e in 0..4 {
            let total = store.count_until(e, true, 1e9) + store.count_until(e, false, 1e9);
            assert!((total - 50.0).abs() <= 5.0, "edge {e}: total {total}");
        }
        // Memory stays bounded: buffer + model per direction.
        assert!(store.storage_bytes() < 4 * 2 * (8 * 8 + 600));
    }

    #[test]
    fn streaming_matches_batch_on_sorted_input() {
        // Feeding the same sorted events to FormStore and the streaming
        // store keeps cumulative counts within model tolerance.
        let mut exact = FormStore::new(1);
        let mut stream = StreamingLearnedStore::new(1, RegressorKind::PiecewiseLinear(32), 16);
        let mut t = 0.0;
        for i in 0..120 {
            t += 1.0 + 0.5 * ((i as f64) * 0.2).sin();
            exact.record(0, true, t);
            stream.record(ev(t, 0, true));
        }
        for probe in [10.0, 40.0, 90.0, 130.0] {
            let e = exact.count_until(0, true, probe);
            let s = stream.count_until(0, true, probe);
            assert!((e - s).abs() <= 6.0, "probe {probe}: exact {e} stream {s}");
        }
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn negative_skew_rejected() {
        let _ = StreamTracker::new(-1.0);
    }

    #[test]
    fn late_events_are_counted() {
        let mut t = StreamTracker::new(2.0);
        t.offer(ev(0.0, 0, true)).unwrap();
        t.offer(ev(10.0, 0, true)).unwrap(); // watermark jumps to 8
        assert!(t.offer(ev(3.0, 0, true)).is_err());
        assert!(t.offer(ev(4.0, 1, false)).is_err());
        let s = t.stats();
        assert_eq!(s.late_dropped, 2);
        assert_eq!(s.accepted, 2);
    }

    #[test]
    fn exact_duplicates_are_suppressed() {
        let mut t = StreamTracker::new(50.0);
        let e = ev(5.0, 3, true);
        assert!(t.offer(e).unwrap().is_empty());
        assert!(t.offer(e).unwrap().is_empty(), "retransmission swallowed");
        assert!(t.offer(e).unwrap().is_empty());
        // Same time, different identity: kept.
        t.offer(ev(5.0, 3, false)).unwrap();
        t.offer(ev(5.0, 4, true)).unwrap();
        assert_eq!(t.pending(), 3);
        let s = t.stats();
        assert_eq!(s.duplicates_suppressed, 2);
        assert_eq!(s.accepted, 3);
        let released = t.finish();
        assert_eq!(released.len(), 3, "the duplicate is delivered exactly once");
    }
}
