//! The `stq` binary: see [`stq_cli::USAGE`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match stq_cli::Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = stq_cli::run(&args, &mut lock) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
