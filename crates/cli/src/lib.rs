//! # stq-cli
//!
//! Command-line driver for the `stq` framework. The binary is `stq`:
//!
//! ```sh
//! stq generate --junctions 600 --seed 7 --svg city.svg
//! stq simulate --junctions 600 --objects 150 --seed 7
//! stq deploy   --junctions 600 --method quadtree --size 0.1 --svg deploy.svg
//! stq query    --junctions 600 --method quadtree --size 0.1 \
//!              --kind transient --area 0.05 --queries 10
//! ```
//!
//! The command surface is a thin, deterministic wrapper over the library —
//! every run is reproducible from its flags. Argument parsing is hand
//! rolled (the workspace's dependency policy keeps external crates to the
//! approved list).

use std::collections::HashMap;
use std::path::PathBuf;

use stq_core::prelude::*;
use stq_core::repair::{RepairKind, RepairOutcome};
use stq_core::tracker::Crossing;
use stq_forms::{EdgeHealth, Evidence, FormStore};
use stq_mobility::stats::{population_curve, WorkloadStats};
use stq_net::{ChaosConfig, CrashWindow, SensorFaultKind, SensorFaultMix, SensorFaultPlan};
use stq_runtime::{
    DurabilityConfig, OverloadConfig, QuerySpec, RebalanceConfig, Runtime, RuntimeConfig,
    SubscribeError,
};
use stq_sampling::SamplingMethod;

/// Parsed command-line arguments: a subcommand plus `--key value` flags.
#[derive(Clone, Debug)]
pub struct Args {
    /// The subcommand name (`generate`, `simulate`, `deploy`, `query`).
    pub command: String,
    flags: HashMap<String, String>,
}

/// CLI errors (bad flags, unknown commands, I/O).
#[derive(Debug)]
pub enum CliError {
    /// Bad flags or an unknown command; the message is user-facing.
    Usage(String),
    /// Filesystem failure while writing an output artifact.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, CliError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or_else(|| CliError::Usage(USAGE.to_string()))?;
        let mut flags = HashMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got {key}")))?
                .to_string();
            let value =
                it.next().ok_or_else(|| CliError::Usage(format!("flag --{key} needs a value")))?;
            if flags.insert(key.clone(), value).is_some() {
                // A repeated flag is never what the user meant: either a
                // typo or two conflicting values, and silently letting the
                // last one win makes the run unreproducible from memory.
                return Err(CliError::Usage(format!("duplicate flag --{key}")));
            }
        }
        Ok(Args { command, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError::Usage(format!("invalid value for --{key}: {v}")))
            }
        }
    }

    fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("invalid value for --{key}: {v}"))),
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
stq — in-network spatiotemporal range queries (EDBT 2024 reproduction)

USAGE: stq <command> [--flag value]...

COMMANDS:
  generate   build a synthetic city            [--junctions N --seed S --svg FILE]
  simulate   build city + workload, print stats[--junctions N --objects K --seed S]
  deploy     select sensors, build G̃           [--method M --size F --knn K --svg FILE]
  query      answer range count queries        [--kind snapshot|static|transient
                                                --area F --queries N --learned MODEL]
  serve      run the sharded serving runtime   [--shards N --dispatchers N --queries N
                                                --drop P --delay P --dup P --delay-ms MS
                                                --crash SHARD --retries N --timeout-ms MS
                                                --chaos-seed S + sensor-fault flags
                                                --wal-dir DIR --snapshot-every N
                                                --sync-every N --ingest N --kill SHARD:SEQ
                                                --subscribe N --subscribe-area F
                                                --impute 0|1 --overload 0|1
                                                --deadline-ms MS --rebalance 0|1
                                                --batch N]
  recover    rebuild shard state from disk     [--wal-dir DIR --snapshot-every N
                                                --sync-every N + deployment flags]
  audit      corrupt sensors, audit + repair   [--dead F --lossy F --dup-sensors F
                                                --flip F --skew F --chaos-seed S]
common flags: --junctions N (600) --objects K (120) --seed S (2024)
chaos: one root seed drives message, sensor, and durability faults;
  --chaos-seed S is canonical, --fault-seed S is the legacy alias, and
  conflicting or repeated seed flags are rejected
sensor-fault flags (fractions of monitored links): --dead F --lossy F
  --dup-sensors F --flip F --skew F; serve quarantines what the audit flags
  --impute 1 answers through quarantine via detours, conservation-residual
  imputation and learned fallback instead of worst-case widening
methods: uniform|systematic|stratified|kdtree|quadtree";

fn scenario_from(args: &Args) -> Result<Scenario, CliError> {
    let junctions: usize = args.get("junctions", 600)?;
    let objects: usize = args.get("objects", 120)?;
    let seed: u64 = args.get("seed", 2024)?;
    Ok(Scenario::build(ScenarioConfig {
        junctions,
        mix: WorkloadMix {
            random_waypoint: objects / 3,
            commuter: objects / 3,
            transit: objects - 2 * (objects / 3),
        },
        seed,
        ..Default::default()
    }))
}

fn method_from(args: &Args) -> Result<SamplingMethod, CliError> {
    match args.get_str("method").unwrap_or("quadtree") {
        "uniform" => Ok(SamplingMethod::Uniform),
        "systematic" => Ok(SamplingMethod::Systematic),
        "stratified" => Ok(SamplingMethod::Stratified),
        "kdtree" => Ok(SamplingMethod::KdTree),
        "quadtree" => Ok(SamplingMethod::QuadTree),
        other => Err(CliError::Usage(format!("unknown sampling method: {other}"))),
    }
}

fn deployment_from(args: &Args, s: &Scenario) -> Result<SampledGraph, CliError> {
    let size: f64 = args.get("size", 0.1)?;
    if !(0.0..=1.0).contains(&size) {
        return Err(CliError::Usage("--size must be in [0, 1]".into()));
    }
    let seed: u64 = args.get("seed", 2024)?;
    let cands = s.sensing.sensor_candidates();
    let m = ((cands.len() as f64 * size).round() as usize).clamp(3, cands.len());
    let ids = stq_sampling::sample(method_from(args)?, &cands, m, seed ^ 0x5a);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let conn = match args.get::<usize>("knn", 0)? {
        0 => Connectivity::Triangulation,
        k => Connectivity::Knn(k),
    };
    Ok(SampledGraph::from_sensors(&s.sensing, &faces, conn))
}

/// Parses the sensor-fault mix flags (fractions of monitored links).
fn sensor_mix_from(args: &Args) -> Result<SensorFaultMix, CliError> {
    let mix = SensorFaultMix {
        dead: args.get("dead", 0.0)?,
        lossy: args.get("lossy", 0.0)?,
        duplicating: args.get("dup-sensors", 0.0)?,
        flipped: args.get("flip", 0.0)?,
        skewed: args.get("skew", 0.0)?,
    };
    for (flag, p) in [
        ("dead", mix.dead),
        ("lossy", mix.lossy),
        ("dup-sensors", mix.duplicating),
        ("flip", mix.flipped),
        ("skew", mix.skewed),
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::Usage(format!("--{flag} must be in [0, 1]")));
        }
    }
    if mix.total() > 1.0 {
        return Err(CliError::Usage("sensor-fault fractions must sum to ≤ 1".into()));
    }
    Ok(mix)
}

/// Builds the unified chaos configuration from the fault flags. One root
/// seed drives every plan: `--chaos-seed` is the canonical flag, the legacy
/// `--fault-seed` still works, and giving both (or either twice) with
/// different values is rejected instead of letting one silently win.
fn chaos_from(args: &Args, default_seed: u64) -> Result<ChaosConfig, CliError> {
    let drop_p: f64 = args.get("drop", 0.0)?;
    let delay_p: f64 = args.get("delay", 0.0)?;
    let dup_p: f64 = args.get("dup", 0.0)?;
    let delay_ms: u64 = args.get("delay-ms", 2)?;
    for (flag, p) in [("drop", drop_p), ("delay", delay_p), ("dup", dup_p)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(CliError::Usage(format!("--{flag} must be in [0, 1]")));
        }
    }
    let mut b = ChaosConfig::builder()
        .message_loss(drop_p, delay_p, dup_p, delay_ms)
        .sensor_mix(sensor_mix_from(args)?);
    if let Some(shard) = args.get_str("crash") {
        let node: usize = shard
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --crash shard: {shard}")))?;
        b = b.crash_window(CrashWindow { node, after_messages: 0, lasts_messages: u64::MAX });
    }
    if let Some(kill) = args.get_str("kill") {
        let (shard, seq) = kill
            .split_once(':')
            .and_then(|(s, q)| Some((s.parse().ok()?, q.parse().ok()?)))
            .ok_or_else(|| {
                CliError::Usage(format!("invalid --kill (want SHARD:SEQ, got {kill})"))
            })?;
        b = b.ingest_crash(shard, seq);
    }
    let mut seeded = false;
    for key in ["chaos-seed", "fault-seed"] {
        if let Some(v) = args.get_opt::<u64>(key)? {
            b = b.seed(v);
            seeded = true;
        }
    }
    if !seeded {
        b = b.seed(default_seed);
    }
    b.build().map_err(|e| CliError::Usage(e.to_string()))
}

/// Corrupts ingestion per the chaos config's sensor mix, then audits and
/// repairs. Returns the fault schedule, the (repaired) tracked data and the
/// repair outcome.
fn faulty_pipeline(
    s: &Scenario,
    g: &SampledGraph,
    chaos: &ChaosConfig,
) -> (SensorFaultPlan, Tracked, RepairOutcome) {
    let horizon = (0.0, s.config.trajectory.duration);
    let monitored: Vec<usize> = (0..s.sensing.num_edges()).filter(|&e| g.monitored()[e]).collect();
    let plan = chaos.sensor_plan(&monitored, horizon);
    let mut tracked = ingest_with_faults(&s.sensing, &s.trajectories, &plan);
    let outcome =
        quarantine_and_repair(&s.sensing, g, &mut tracked.store, horizon, &RepairConfig::default());
    (plan, tracked, outcome)
}

fn health_label(h: EdgeHealth) -> &'static str {
    match h {
        EdgeHealth::Healthy => "healthy",
        EdgeHealth::Suspect => "suspect",
        EdgeHealth::Dead => "dead",
    }
}

fn evidence_label(e: &Evidence) -> &'static str {
    match e {
        Evidence::NonMonotone { .. } => "non-monotone",
        Evidence::DuplicateTimestamps { .. } => "dup-timestamps",
        Evidence::Conservation { .. } => "conservation",
        Evidence::SilentGap { .. } => "silent-gap",
        Evidence::SilentSibling { .. } => "silent-sibling",
    }
}

/// Runs one command, writing human-readable output into `out`.
pub fn run(args: &Args, out: &mut impl std::io::Write) -> Result<(), CliError> {
    match args.command.as_str() {
        "generate" => {
            let s = scenario_from(args)?;
            writeln!(
                out,
                "city: {} junctions, {} roads, {} sensors, {} gates",
                s.sensing.road().num_junctions(),
                s.sensing.num_edges(),
                s.sensing.num_sensors(),
                s.sensing.road().gate_junctions().len()
            )?;
            if let Some(path) = args.get_str("svg") {
                std::fs::write(path, Scene::new(&s.sensing).to_svg())?;
                writeln!(out, "wrote {path}")?;
            }
            Ok(())
        }
        "simulate" => {
            let s = scenario_from(args)?;
            let stats = WorkloadStats::compute(s.sensing.road(), &s.trajectories);
            writeln!(out, "objects: {}  crossings: {}", stats.objects, s.tracked.num_crossings)?;
            writeln!(
                out,
                "distance: {:.0}  exited: {}  edge-load gini: {:.3}",
                stats.total_distance,
                stats.exited,
                stats.edge_load_gini()
            )?;
            let curve = population_curve(
                s.sensing.road(),
                &s.trajectories,
                9,
                s.config.trajectory.duration,
            );
            write!(out, "population: ")?;
            for (t, p) in curve {
                write!(out, "{p}@{t:.0} ")?;
            }
            writeln!(out)?;
            Ok(())
        }
        "deploy" => {
            let s = scenario_from(args)?;
            let g = deployment_from(args, &s)?;
            let topo = AbstractTopology::build(&s.sensing, &g);
            writeln!(
                out,
                "deployment: {} communication sensors ({:.1}%), {} monitored links ({:.1}%)",
                g.sensors().len(),
                100.0 * g.size_fraction(&s.sensing),
                g.num_monitored_edges(),
                100.0 * g.num_monitored_edges() as f64 / s.sensing.num_edges() as f64
            )?;
            writeln!(
                out,
                "abstract topology: {} nodes, {} chains, mean {:.1} hops/chain",
                topo.nodes.len(),
                topo.chains.len(),
                topo.mean_chain_hops()
            )?;
            if let Some(path) = args.get_str("svg") {
                std::fs::write(path, Scene::new(&s.sensing).with_sampled(&s.sensing, &g).to_svg())?;
                writeln!(out, "wrote {path}")?;
            }
            Ok(())
        }
        "query" => {
            let s = scenario_from(args)?;
            let g = deployment_from(args, &s)?;
            let area: f64 = args.get("area", 0.05)?;
            let n: usize = args.get("queries", 5)?;
            let seed: u64 = args.get("seed", 2024)?;
            let kind_name = args.get_str("kind").unwrap_or("snapshot");
            let learned = match args.get_str("learned") {
                Some("linear") => Some(stq_learned::RegressorKind::Linear),
                Some("pwl") => Some(stq_learned::RegressorKind::PiecewiseLinear(16)),
                Some("step") => Some(stq_learned::RegressorKind::Step(16)),
                Some(other) => return Err(CliError::Usage(format!("unknown model: {other}"))),
                None => None,
            };
            let store: Box<dyn stq_forms::CountSource> = match learned {
                Some(kind) => {
                    Box::new(LearnedStore::fit(&s.tracked.store, Some(g.monitored()), kind))
                }
                None => Box::new(s.tracked.store.clone()),
            };
            writeln!(
                out,
                "{:>3} | {:>10} | {:>10} | {:>8} | {:>6}",
                "#", "exact η", "answer η̂", "rel.err", "nodes"
            )?;
            for (i, (q, t0, t1)) in s.make_queries(n, area, 2_000.0, seed ^ 0x7).iter().enumerate()
            {
                let kind = match kind_name {
                    "snapshot" => QueryKind::Snapshot(*t0),
                    "static" => QueryKind::Static(*t0, *t1),
                    "transient" => QueryKind::Transient(*t0, *t1),
                    other => return Err(CliError::Usage(format!("unknown query kind: {other}"))),
                };
                let truth = ground_truth(&s.sensing, &s.tracked.store, q, kind);
                let est = answer(&s.sensing, &g, store.as_ref(), q, kind, Approximation::Lower);
                let err = relative_error(truth, est.value)
                    .map(|e| format!("{:.1}%", e * 100.0))
                    .unwrap_or_else(|| "-".into());
                writeln!(
                    out,
                    "{i:>3} | {truth:>10.1} | {:>10.1} | {err:>8} | {:>6}{}",
                    est.value,
                    est.nodes_accessed,
                    if est.miss { "  MISS" } else { "" }
                )?;
            }
            Ok(())
        }
        "serve" => {
            let area: f64 = args.get("area", 0.05)?;
            let n: usize = args.get("queries", 8)?;
            let seed: u64 = args.get("seed", 2024)?;
            let kind_name = args.get_str("kind").unwrap_or("snapshot");
            let chaos = chaos_from(args, seed)?;
            let shards: usize = args.get("shards", 4)?;
            let dispatchers: usize = args.get("dispatchers", 2)?;
            if shards == 0 || dispatchers == 0 {
                return Err(CliError::Usage(
                    "--shards and --dispatchers must be at least 1".into(),
                ));
            }
            let durability = match args.get_str("wal-dir") {
                Some(dir) => Some(DurabilityConfig {
                    wal_dir: PathBuf::from(dir),
                    snapshot_every: args.get("snapshot-every", 65_536)?,
                    sync_every: args.get("sync-every", 32)?,
                    faults: chaos.durability.clone(),
                }),
                None => {
                    if args.get_str("kill").is_some() {
                        return Err(CliError::Usage(
                            "--kill injects a WAL-append crash and needs --wal-dir".into(),
                        ));
                    }
                    None
                }
            };
            let ingest_n: usize = args.get("ingest", 0)?;
            // Standing subscriptions: `--subscribe N` registers N regions
            // before ingestion so the stream moves their brackets by count
            // deltas. The flag combinations are validated the same way the
            // durability flags are — a modifier without its anchor is a
            // refusal, not a silent no-op.
            let subscribe_n = args.get_opt::<usize>("subscribe")?;
            let subscribe_area: f64 = match args.get_opt::<f64>("subscribe-area")? {
                Some(a) => {
                    if subscribe_n.is_none() {
                        return Err(CliError::Usage(
                            "--subscribe-area sizes standing regions and needs --subscribe".into(),
                        ));
                    }
                    a
                }
                None => area,
            };
            if subscribe_n == Some(0) {
                return Err(CliError::Usage(
                    "--subscribe must register at least one standing query".into(),
                ));
            }
            if !(0.0..=1.0).contains(&subscribe_area) {
                return Err(CliError::Usage("--subscribe-area must be in [0, 1]".into()));
            }
            // Degraded-mode answering is opt-in: it trades the default
            // worst-case widening on quarantined boundaries for detour /
            // imputation / learned-fallback answers with honest brackets.
            let impute = match args.get::<u8>("impute", 0)? {
                0 => false,
                1 => true,
                _ => return Err(CliError::Usage("--impute must be 0 or 1".into())),
            };
            if impute && chaos.sensor_mix.total() == 0.0 {
                return Err(CliError::Usage(
                    "--impute answers through quarantine and needs sensor-fault flags".into(),
                ));
            }
            // Overload control is opt-in: `--overload 1` turns on the
            // admission gate (queries then go through `try_submit` and can
            // come back REJECTED), brownout shedding, and circuit breakers;
            // `--deadline-ms` stamps a default budget on every query.
            let overload_on = match args.get::<u8>("overload", 0)? {
                0 => false,
                1 => true,
                _ => return Err(CliError::Usage("--overload must be 0 or 1".into())),
            };
            let deadline_ms = args.get_opt::<u64>("deadline-ms")?;
            if deadline_ms.is_some() && !overload_on {
                return Err(CliError::Usage(
                    "--deadline-ms stamps a default query budget and needs --overload 1".into(),
                ));
            }
            if deadline_ms == Some(0) {
                return Err(CliError::Usage("--deadline-ms must be at least 1".into()));
            }
            // Load-aware shard rebalancing is opt-in: `--rebalance 1`
            // swaps the static modulo edge→shard map for one that migrates
            // hot edges between shards as crossing rates skew. `--batch N`
            // streams ingestion in columnar batches of N events (one
            // group-commit WAL frame per shard lane) instead of one event
            // at a time.
            let rebalance_on = match args.get::<u8>("rebalance", 0)? {
                0 => false,
                1 => true,
                _ => return Err(CliError::Usage("--rebalance must be 0 or 1".into())),
            };
            let batch = args.get_opt::<usize>("batch")?;
            if batch == Some(0) {
                return Err(CliError::Usage("--batch must be at least 1".into()));
            }
            if batch.is_some() && ingest_n == 0 {
                return Err(CliError::Usage(
                    "--batch sizes ingest batches and needs --ingest".into(),
                ));
            }
            let cfg = RuntimeConfig {
                num_shards: shards,
                dispatchers,
                shard_timeout: std::time::Duration::from_millis(args.get("timeout-ms", 20)?),
                max_retries: args.get("retries", 2)?,
                fault: chaos.message.clone(),
                durability,
                degraded: impute.then(DegradedPolicy::default),
                overload: overload_on.then(|| OverloadConfig {
                    default_deadline: deadline_ms.map(std::time::Duration::from_millis),
                    ..OverloadConfig::default()
                }),
                rebalance: rebalance_on.then(RebalanceConfig::default),
                ..RuntimeConfig::default()
            };
            let s = scenario_from(args)?;
            let g = deployment_from(args, &s)?;
            // Sensor faults: corrupt ingestion, audit + repair, then serve
            // the repaired store with the quarantined edges blocked at the
            // shards (audit verdicts gate serving).
            let rt = if chaos.sensor_mix.total() > 0.0 {
                let (plan, tracked, outcome) = faulty_pipeline(&s, &g, &chaos);
                writeln!(
                    out,
                    "sensor faults: {} corrupted links, {} repaired, {} quarantined",
                    plan.corrupted_edges().len(),
                    outcome.repaired.len(),
                    outcome.quarantined.len()
                )?;
                Runtime::with_quarantine(
                    s.sensing.clone(),
                    g.clone(),
                    &tracked.store,
                    cfg,
                    &outcome.quarantined,
                )
            } else {
                Runtime::new(s.sensing.clone(), g.clone(), &s.tracked.store, cfg)
            };
            // Standing queries register before ingestion: their baselines
            // snapshot the pre-stream state and every streamed crossing on a
            // subscribed boundary then arrives as a bracket delta.
            let mut handles = Vec::new();
            if let Some(nsub) = subscribe_n {
                let mut unresolvable = 0usize;
                for (region, _, _) in s.make_queries(nsub, subscribe_area, 2_000.0, seed ^ 0x51) {
                    match rt.subscribe(region, Approximation::Lower) {
                        Ok(h) => handles.push(h),
                        Err(SubscribeError::Unresolvable) => unresolvable += 1,
                    }
                }
                writeln!(
                    out,
                    "standing: registered {} subscriptions ({unresolvable} unresolvable)",
                    handles.len()
                )?;
                // Imputation can certify flow intervals on quarantined
                // links before any live event arrives, tightening every
                // standing bracket at once (still containing the truth).
                if impute && !handles.is_empty() {
                    let certified = rt.certify_standing_brackets(1.0e12);
                    if certified > 0 {
                        writeln!(
                            out,
                            "standing: imputation certified {certified} quarantined links"
                        )?;
                    }
                }
            }
            // Live ingestion: stream synthetic post-horizon crossings over
            // the monitored links, WAL-logging each when --wal-dir is set
            // (and firing any scheduled --kill, which the supervisor must
            // survive). The flush barrier lines every shard up before
            // queries are served.
            if ingest_n > 0 {
                let monitored: Vec<usize> =
                    (0..s.sensing.num_edges()).filter(|&e| g.monitored()[e]).collect();
                if monitored.is_empty() {
                    return Err(CliError::Usage("--ingest needs monitored links".into()));
                }
                let t0 = s.config.trajectory.duration;
                let event = |i: usize| Crossing {
                    time: t0 + 1.0 + i as f64 * 0.1,
                    edge: monitored[i % monitored.len()],
                    forward: i % 2 == 0,
                };
                match batch {
                    Some(bn) => {
                        let events: Vec<Crossing> = (0..ingest_n).map(event).collect();
                        for chunk in events.chunks(bn) {
                            let report = rt.ingest_batch(chunk);
                            debug_assert_eq!(report.rejected, 0);
                        }
                    }
                    None => {
                        for i in 0..ingest_n {
                            rt.ingest(event(i)).expect("ingest");
                        }
                    }
                }
                let applied = rt.flush_ingest();
                writeln!(out, "ingested {ingest_n} crossings (per-shard applied: {applied:?})")?;
                if rebalance_on {
                    writeln!(
                        out,
                        "rebalance: map epoch {}, shard loads {:?}",
                        rt.map_epoch(),
                        rt.shard_loads()
                    )?;
                }
            }
            if !handles.is_empty() {
                writeln!(
                    out,
                    "{:>7} | {:>10} | {:>10} | {:>10} | {:>6} | {:>5}",
                    "sub", "value", "lower", "upper", "deltas", "epoch"
                )?;
                for h in &handles {
                    let b = rt.standing_bracket(h.id).expect("subscription is live");
                    writeln!(
                        out,
                        "{:>7} | {:>10.1} | {:>10.1} | {:>10.1} | {:>6} | {:>5}{}",
                        h.id,
                        b.value,
                        b.lower,
                        b.upper,
                        b.deltas,
                        b.epoch,
                        if b.is_exact() { "" } else { "  WIDENED" }
                    )?;
                }
            }
            let specs: Vec<QuerySpec> = s
                .make_queries(n, area, 2_000.0, seed ^ 0x7)
                .into_iter()
                .map(|(region, t0, t1)| {
                    let kind = match kind_name {
                        "snapshot" => Ok(QueryKind::Snapshot(t0)),
                        "static" => Ok(QueryKind::Static(t0, t1)),
                        "transient" => Ok(QueryKind::Transient(t0, t1)),
                        other => Err(CliError::Usage(format!("unknown query kind: {other}"))),
                    }?;
                    Ok(QuerySpec::new(region, kind, Approximation::Lower))
                })
                .collect::<Result<_, CliError>>()?;
            writeln!(
                out,
                "{:>3} | {:>10} | {:>10} | {:>10} | {:>6} | {:>5} | {:>8}",
                "#", "answer η̂", "lower", "upper", "cover", "retry", "µs"
            )?;
            // Submit everything first so the queue and shard pool actually
            // run concurrently, then collect in submission order. With
            // overload control on, the admission gate may refuse some
            // submissions outright — those print as REJECTED rows.
            let pending: Vec<_> = specs
                .into_iter()
                .map(|spec| if overload_on { rt.try_submit(spec) } else { Ok(rt.submit(spec)) })
                .collect();
            for (i, p) in pending.into_iter().enumerate() {
                let a = match p {
                    Ok(pending) => pending.wait(),
                    Err(rej) => {
                        writeln!(
                            out,
                            "{i:>3} | {:>10} (retry after {} ms)",
                            "REJECTED",
                            rej.retry_after.as_millis()
                        )?;
                        continue;
                    }
                };
                // Degraded strategies print which rung of the escalation
                // answered (and how much structural coverage certified it);
                // classic worst-case degradation keeps the bare tag.
                let tag = if a.miss {
                    "  MISS".to_string()
                } else if a.expired {
                    "  EXPIRED".to_string()
                } else if a.strategy != DegradedStrategy::None {
                    format!("  {} conf {:.2}", a.strategy.label().to_uppercase(), a.confidence)
                } else if a.quarantined > 0 {
                    "  QUARANTINED".to_string()
                } else if a.brownout > 0 {
                    format!("  BROWNOUT L{}", a.brownout)
                } else if a.degraded {
                    "  DEGRADED".to_string()
                } else {
                    String::new()
                };
                writeln!(
                    out,
                    "{i:>3} | {:>10.1} | {:>10.1} | {:>10.1} | {:>6.2} | {:>5} | {:>8}{tag}",
                    a.value,
                    a.lower,
                    a.upper,
                    a.coverage,
                    a.retries,
                    a.latency.as_micros(),
                )?;
            }
            writeln!(out, "{}", rt.metrics().report())?;
            rt.shutdown();
            Ok(())
        }
        "audit" => {
            let s = scenario_from(args)?;
            let g = deployment_from(args, &s)?;
            let chaos = chaos_from(args, args.get("seed", 2024)?)?;
            let (plan, _tracked, outcome) = faulty_pipeline(&s, &g, &chaos);
            writeln!(
                out,
                "injected: {} corrupted of {} monitored links (seed {})",
                plan.corrupted_edges().len(),
                g.num_monitored_edges(),
                chaos.seed
            )?;
            for kind in SensorFaultKind::ALL {
                let n = plan.edges_of(kind).len();
                if n > 0 {
                    writeln!(out, "  {:<12} {n}", kind.label())?;
                }
            }
            writeln!(
                out,
                "{:>6} | {:>8} | {:>5} | {:>11} | evidence",
                "edge", "health", "conf", "outcome"
            )?;
            for e in outcome.initial.flagged() {
                let v = outcome.initial.verdict(e).expect("flagged edge has a verdict");
                let fate = if outcome.repaired.iter().any(|r| r.edge == e) {
                    "repaired"
                } else if outcome.quarantined.contains(&e) {
                    "quarantined"
                } else {
                    "cleared"
                };
                let kinds: Vec<&str> = v.evidence.iter().map(evidence_label).collect();
                writeln!(
                    out,
                    "{e:>6} | {:>8} | {:>5.2} | {fate:>11} | {}",
                    health_label(v.health),
                    v.confidence,
                    kinds.join(", ")
                )?;
            }
            let unflips = outcome.repaired.iter().filter(|r| r.kind == RepairKind::Unflip).count();
            let dedups = outcome.repaired.iter().filter(|r| r.kind == RepairKind::Dedup).count();
            writeln!(
                out,
                "audit: {} flagged, {} repaired ({unflips} unflip, {dedups} dedup), {} quarantined",
                outcome.initial.flagged().len(),
                outcome.repaired.len(),
                outcome.quarantined.len()
            )?;
            writeln!(
                out,
                "granularity: {} → {} components after demotion",
                g.components().len(),
                outcome.graph.components().len()
            )?;
            Ok(())
        }
        "recover" => {
            // Offline crash recovery: rebuild every shard's state from its
            // snapshot + WAL, report torn tails, reassemble the store, and
            // run the integrity audit over it — the same audit → quarantine
            // path the live supervisor hands unexplained gaps to.
            let dir = args
                .get_str("wal-dir")
                .ok_or_else(|| CliError::Usage("recover needs --wal-dir".into()))?;
            let snapshot_every: u64 = args.get("snapshot-every", 65_536)?;
            let sync_every: u64 = args.get("sync-every", 32)?;
            let s = scenario_from(args)?;
            let g = deployment_from(args, &s)?;
            let root = PathBuf::from(dir);
            let mut shards: Vec<usize> = std::fs::read_dir(&root)?
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    e.file_name().to_str()?.strip_prefix("shard-")?.parse::<usize>().ok()
                })
                .collect();
            shards.sort_unstable();
            if shards.is_empty() {
                return Err(CliError::Usage(format!("no shard-<i> directories under {dir}")));
            }
            writeln!(
                out,
                "{:>5} | {:>9} | {:>8} | {:>9} | {:>6} | {:>9}",
                "shard", "snap seq", "wal recs", "recovered", "tail", "discarded"
            )?;
            let mut store = FormStore::new(s.sensing.num_edges());
            let mut torn = 0usize;
            for &i in &shards {
                let rec = stq_durability::recover_shard(&root, i, snapshot_every, sync_every)?;
                let r = &rec.report;
                writeln!(
                    out,
                    "{i:>5} | {:>9} | {:>8} | {:>9} | {:>6} | {:>9}",
                    r.snapshot_seq,
                    r.wal_records,
                    r.recovered_seq,
                    if r.torn_tail { "TORN" } else { "clean" },
                    r.discarded_bytes
                )?;
                torn += usize::from(r.torn_tail);
                for (e, form) in rec.forms {
                    if e >= store.num_edges() {
                        return Err(CliError::Usage(format!(
                            "recovered edge {e} exceeds the city's {} edges — pass the same \
                             --junctions/--seed the serving run used",
                            store.num_edges()
                        )));
                    }
                    store.set_form(e, form);
                }
            }
            writeln!(
                out,
                "recovered {} shards ({torn} torn tails), {} events total",
                shards.len(),
                store.total_events()
            )?;
            let horizon = (0.0, s.config.trajectory.duration);
            let outcome = quarantine_and_repair(
                &s.sensing,
                &g,
                &mut store,
                horizon,
                &RepairConfig::default(),
            );
            writeln!(
                out,
                "audit: {} flagged, {} repaired, {} quarantined",
                outcome.initial.flagged().len(),
                outcome.repaired.len(),
                outcome.quarantined.len()
            )?;
            Ok(())
        }
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command: {other}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(argv: &[&str]) -> String {
        let args = Args::parse(argv.iter().map(|s| s.to_string())).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn parse_flags() {
        let a =
            Args::parse(["query", "--area", "0.1", "--kind", "static"].map(String::from)).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.get::<f64>("area", 0.0).unwrap(), 0.1);
        assert_eq!(a.get_str("kind"), Some("static"));
        assert_eq!(a.get::<usize>("missing", 9).unwrap(), 9);
    }

    #[test]
    fn parse_errors() {
        assert!(Args::parse(Vec::<String>::new()).is_err());
        assert!(Args::parse(["x", "notaflag"].map(String::from)).is_err());
        assert!(Args::parse(["x", "--flag"].map(String::from)).is_err());
        let a = Args::parse(["x", "--n", "abc"].map(String::from)).unwrap();
        assert!(a.get::<usize>("n", 0).is_err());
    }

    #[test]
    fn generate_reports_city() {
        let out = run_cmd(&["generate", "--junctions", "120", "--seed", "3"]);
        assert!(out.contains("120 junctions"));
        assert!(out.contains("sensors"));
    }

    #[test]
    fn simulate_reports_workload() {
        let out = run_cmd(&["simulate", "--junctions", "100", "--objects", "12", "--seed", "5"]);
        assert!(out.contains("objects: 12"));
        assert!(out.contains("gini"));
        assert!(out.contains("population:"));
    }

    #[test]
    fn deploy_reports_topology() {
        let out = run_cmd(&[
            "deploy",
            "--junctions",
            "100",
            "--objects",
            "6",
            "--method",
            "uniform",
            "--size",
            "0.15",
        ]);
        assert!(out.contains("communication sensors"));
        assert!(out.contains("abstract topology"));
    }

    #[test]
    fn query_outputs_table() {
        let out = run_cmd(&[
            "query",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--kind",
            "transient",
            "--queries",
            "3",
        ]);
        assert!(out.contains("rel.err"));
        assert_eq!(out.lines().count(), 4); // header + 3 rows
    }

    #[test]
    fn query_with_learned_store() {
        let out = run_cmd(&[
            "query",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--learned",
            "pwl",
            "--queries",
            "2",
        ]);
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn serve_outputs_answers_and_metrics() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--kind",
            "transient",
            "--queries",
            "4",
            "--shards",
            "3",
        ]);
        assert!(out.contains("cover"));
        assert!(out.contains("queries 4"));
        assert!(out.contains("latency p50"));
        assert!(!out.contains("DEGRADED"), "fault-free serving must not degrade:\n{out}");
    }

    #[test]
    fn serve_with_crashed_shard_reports_degradation() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "4",
            "--shards",
            "2",
            "--crash",
            "0",
            "--timeout-ms",
            "2",
            "--retries",
            "1",
        ]);
        assert!(out.contains("DEGRADED") || out.contains("MISS"), "shard 0 is down:\n{out}");
        assert!(out.contains("crashed"));
    }

    #[test]
    fn audit_reports_verdicts_and_repairs() {
        let out = run_cmd(&[
            "audit",
            "--junctions",
            "120",
            "--objects",
            "24",
            "--size",
            "0.3",
            "--dead",
            "0.15",
            "--flip",
            "0.1",
            "--fault-seed",
            "9",
        ]);
        assert!(out.contains("injected:"), "{out}");
        assert!(out.contains("audit:"), "{out}");
        assert!(out.contains("flagged"), "{out}");
        assert!(out.contains("granularity:"), "{out}");
    }

    #[test]
    fn audit_clean_sensors_flag_little() {
        let out = run_cmd(&["audit", "--junctions", "100", "--objects", "20", "--size", "0.3"]);
        assert!(out.contains("injected: 0 corrupted"), "{out}");
    }

    #[test]
    fn serve_with_sensor_faults_quarantines() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "4",
            "--shards",
            "2",
            "--dead",
            "0.2",
            "--fault-seed",
            "5",
        ]);
        assert!(out.contains("sensor faults:"), "{out}");
        assert!(out.contains("quarantined"), "{out}");
    }

    #[test]
    fn serve_with_impute_reports_degraded_strategies() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "8",
            "--area",
            "0.15",
            "--shards",
            "2",
            "--dead",
            "0.25",
            "--fault-seed",
            "5",
            "--impute",
            "1",
            "--subscribe",
            "4",
        ]);
        assert!(out.contains("sensor faults:"), "{out}");
        assert!(out.contains("degraded-mode:"), "metrics must report strategies:\n{out}");
        assert!(out.contains("quarantined edges"), "{out}");
    }

    #[test]
    fn serve_impute_needs_sensor_faults() {
        let args = Args::parse(["serve", "--impute", "1"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).expect_err("--impute without faults is a refusal");
        assert!(err.to_string().contains("sensor-fault"), "{err}");
        let args = Args::parse(["serve", "--impute", "2", "--dead", "0.1"].map(String::from));
        assert!(run(&args.unwrap(), &mut Vec::new()).is_err(), "--impute takes 0|1");
    }

    #[test]
    fn serve_with_overload_control_serves_and_reports() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "4",
            "--shards",
            "2",
            "--overload",
            "1",
            "--deadline-ms",
            "5000",
        ]);
        // A generous budget on an unloaded runtime: everything serves at
        // full precision and the overload counters all stay at zero.
        assert!(out.contains("overload:"), "report must carry the overload line:\n{out}");
        assert!(out.contains("breakers:"), "report must carry the breaker line:\n{out}");
        assert!(!out.contains("EXPIRED"), "nothing expires under a 5 s budget:\n{out}");
        assert!(!out.contains("REJECTED"), "4 queries cannot fill the default gate:\n{out}");
    }

    #[test]
    fn serve_overload_flag_validation() {
        let args = Args::parse(["serve", "--deadline-ms", "100"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).expect_err("--deadline-ms needs --overload 1");
        assert!(err.to_string().contains("--overload"), "{err}");
        let args = Args::parse(["serve", "--overload", "2"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err(), "--overload takes 0|1");
        let args =
            Args::parse(["serve", "--overload", "1", "--deadline-ms", "0"].map(String::from))
                .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err(), "a zero budget is a refusal");
    }

    #[test]
    fn serve_with_batched_ingest_and_rebalance_reports() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "4",
            "--shards",
            "2",
            "--ingest",
            "300",
            "--batch",
            "64",
            "--rebalance",
            "1",
        ]);
        assert!(out.contains("ingested 300 crossings"), "{out}");
        assert!(out.contains("rebalance: map epoch"), "report must carry the map line:\n{out}");
    }

    #[test]
    fn serve_rebalance_and_batch_flag_validation() {
        let args = Args::parse(["serve", "--rebalance", "2"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err(), "--rebalance takes 0|1");
        let args =
            Args::parse(["serve", "--ingest", "10", "--batch", "0"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err(), "a zero batch is a refusal");
        let args = Args::parse(["serve", "--batch", "8"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).expect_err("--batch without --ingest is a refusal");
        assert!(err.to_string().contains("--ingest"), "{err}");
    }

    #[test]
    fn audit_rejects_overfull_mix() {
        let args =
            Args::parse(["audit", "--dead", "0.8", "--lossy", "0.5"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn serve_rejects_bad_probability() {
        let args = Args::parse(["serve", "--drop", "1.5"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn serve_rejects_zero_shards() {
        let args = Args::parse(["serve", "--shards", "0"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        let err = Args::parse(["serve", "--seed", "1", "--seed", "2"].map(String::from))
            .expect_err("duplicate flag must fail to parse");
        assert!(err.to_string().contains("duplicate flag --seed"), "{err}");
        // Even repeating the same value is a refusal — the command line is
        // ambiguous either way.
        assert!(Args::parse(["serve", "--drop", "0.1", "--drop", "0.1"].map(String::from)).is_err());
    }

    #[test]
    fn conflicting_seed_flags_are_rejected() {
        let args =
            Args::parse(["serve", "--chaos-seed", "1", "--fault-seed", "2"].map(String::from))
                .unwrap();
        let err = run(&args, &mut Vec::new()).expect_err("conflicting seeds must be rejected");
        assert!(err.to_string().contains("conflicting"), "{err}");
        // The same value through both flags is merely redundant, not wrong.
        let ok = Args::parse(
            [
                "serve",
                "--junctions",
                "100",
                "--objects",
                "10",
                "--size",
                "0.3",
                "--queries",
                "1",
                "--chaos-seed",
                "7",
                "--fault-seed",
                "7",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(run(&ok, &mut Vec::new()).is_ok());
    }

    #[test]
    fn serve_with_subscriptions_prints_bracket_table() {
        let out = run_cmd(&[
            "serve",
            "--junctions",
            "100",
            "--objects",
            "20",
            "--size",
            "0.3",
            "--queries",
            "2",
            "--shards",
            "2",
            "--subscribe",
            "3",
            "--subscribe-area",
            "0.1",
            "--ingest",
            "90",
        ]);
        assert!(out.contains("standing: registered"), "{out}");
        assert!(out.contains("deltas"), "bracket table header missing:\n{out}");
        assert!(out.contains("sub-0"), "{out}");
        assert!(out.contains("standing: subscriptions"), "metrics line missing:\n{out}");
    }

    #[test]
    fn subscribe_area_without_subscribe_is_rejected() {
        let args = Args::parse(["serve", "--subscribe-area", "0.1"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("needs --subscribe"), "{err}");
    }

    #[test]
    fn subscribe_rejects_degenerate_values() {
        let args = Args::parse(["serve", "--subscribe", "0"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--subscribe"), "{err}");
        let args =
            Args::parse(["serve", "--subscribe", "2", "--subscribe-area", "1.5"].map(String::from))
                .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn kill_without_wal_dir_is_rejected() {
        let args = Args::parse(["serve", "--kill", "0:10"].map(String::from)).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--wal-dir"), "{err}");
        let args = Args::parse(["serve", "--kill", "bogus"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn serve_then_recover_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("stq-cli-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = dir.to_str().unwrap();
        let common = ["--junctions", "100", "--objects", "20", "--size", "0.3", "--seed", "11"];
        let mut serve_args = vec![
            "serve",
            "--queries",
            "2",
            "--shards",
            "2",
            "--ingest",
            "120",
            "--kill",
            "0:40",
            "--snapshot-every",
            "32",
            "--sync-every",
            "8",
            "--wal-dir",
            wal,
        ];
        serve_args.extend_from_slice(&common);
        let out = run_cmd(&serve_args);
        assert!(out.contains("ingested 120 crossings"), "{out}");
        assert!(out.contains("respawns 1"), "the scheduled kill must fire and recover:\n{out}");

        let mut rec_args =
            vec!["recover", "--wal-dir", wal, "--snapshot-every", "32", "--sync-every", "8"];
        rec_args.extend_from_slice(&common);
        let out = run_cmd(&rec_args);
        assert!(out.contains("recovered 2 shards"), "{out}");
        assert!(out.contains("audit:"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_requires_wal_dir_with_shards() {
        let args = Args::parse(["recover"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        let empty = std::env::temp_dir().join(format!("stq-cli-rec-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        let args = Args::parse(["recover", "--wal-dir", empty.to_str().unwrap()].map(String::from))
            .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err(), "no shard dirs → usage error");
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn svg_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("stq-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("city.svg");
        let out = run_cmd(&["generate", "--junctions", "80", "--svg", path.to_str().unwrap()]);
        assert!(out.contains("wrote"));
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_and_bad_method() {
        let args = Args::parse(["frobnicate"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        let args = Args::parse(["deploy", "--method", "psychic"].map(String::from)).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cmd(&["help"]);
        assert!(out.contains("USAGE"));
        assert!(out.contains("deploy"));
    }
}
