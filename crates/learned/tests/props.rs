//! Property tests on the regression models: bounds, monotonicity-ish
//! behaviour, exactness of the step mode, and buffer conservation.

use proptest::prelude::*;
use stq_learned::{BufferedSeries, RegressorKind};

fn sorted_times() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..10.0, 0..200).prop_map(|gaps| {
        let mut t = 0.0;
        gaps.into_iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

fn all_kinds() -> Vec<RegressorKind> {
    let mut ks = RegressorKind::standard_set();
    ks.push(RegressorKind::PiecewiseLinear(64));
    ks.push(RegressorKind::Step(4));
    ks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictions_bounded(ts in sorted_times(), probe in -5.0f64..2500.0) {
        for kind in all_kinds() {
            let m = kind.fit(&ts);
            let p = m.predict(probe);
            prop_assert!((0.0..=ts.len() as f64 + 1e-9).contains(&p),
                "{kind:?} predicted {p} outside [0, {}]", ts.len());
        }
    }

    #[test]
    fn before_first_event_zero_after_last_total(ts in sorted_times()) {
        if ts.is_empty() { return Ok(()); }
        for kind in all_kinds() {
            let m = kind.fit(&ts);
            prop_assert_eq!(m.predict(ts[0] - 1.0), 0.0);
            let end = m.predict(ts[ts.len() - 1] + 1.0);
            // Polynomials may undershoot slightly; never exceed the total.
            prop_assert!(end <= ts.len() as f64 + 1e-9);
        }
    }

    #[test]
    fn pwl_step_mode_is_exact(ts in sorted_times()) {
        // With a knot budget at least the event count, pwl is an exact CDF.
        let kind = RegressorKind::PiecewiseLinear(ts.len().max(1));
        let m = kind.fit(&ts);
        for (i, &t) in ts.iter().enumerate() {
            prop_assert!((m.predict(t) - (i + 1) as f64).abs() < 1e-9, "rank {i}");
            prop_assert!((m.predict(t - 1e-6) - i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn pwl_and_step_monotone(ts in sorted_times()) {
        if ts.is_empty() { return Ok(()); }
        for kind in [RegressorKind::PiecewiseLinear(8), RegressorKind::Step(16)] {
            let m = kind.fit(&ts);
            let lo = ts[0] - 1.0;
            let hi = ts[ts.len() - 1] + 1.0;
            let mut prev = -1.0;
            for k in 0..100 {
                let t = lo + (hi - lo) * k as f64 / 99.0;
                let p = m.predict(t);
                prop_assert!(p + 1e-9 >= prev, "{kind:?} non-monotone at {t}");
                prev = p;
            }
        }
    }

    #[test]
    fn model_size_constant(ts in sorted_times()) {
        // Size must not scale with the event count (beyond the step-exact
        // small-n regime).
        for kind in [RegressorKind::Linear, RegressorKind::Quadratic, RegressorKind::Step(16)] {
            let m = kind.fit(&ts);
            prop_assert!(m.size_bytes() <= 200, "{kind:?}: {} bytes", m.size_bytes());
        }
    }

    #[test]
    fn buffered_series_conserves_totals(ts in sorted_times(), cap in 1usize..64) {
        let mut s = BufferedSeries::new(RegressorKind::PiecewiseLinear(16), cap);
        for &t in &ts {
            s.push(t);
        }
        prop_assert_eq!(s.total(), ts.len());
        // Final cumulative estimate equals the total (clamped model + buffer).
        if let Some(&last) = ts.last() {
            let est = s.count_until(last + 1.0);
            prop_assert!((est - ts.len() as f64).abs() <= ts.len() as f64 * 0.15 + 2.0,
                "estimate {est} vs total {}", ts.len());
        }
        // Storage bounded regardless of length.
        prop_assert!(s.size_bytes() <= cap * 8 + 16 * 17 + 64);
    }

    #[test]
    fn linear_fit_residual_bounded_on_near_uniform(n in 10usize..150, jitter in 0.0f64..0.2) {
        // Near-uniform arrivals: linear must fit well (relative residual
        // bounded by the jitter magnitude plus a constant).
        let ts: Vec<f64> = (0..n)
            .map(|i| i as f64 + jitter * ((i * 2654435761) % 100) as f64 / 100.0)
            .collect();
        let m = RegressorKind::Linear.fit(&ts);
        for (i, &t) in ts.iter().enumerate() {
            let err = (m.predict(t) - (i + 1) as f64).abs();
            prop_assert!(err <= 2.0 + jitter * n as f64 * 0.5, "rank {i}: err {err}");
        }
    }
}
