//! # stq-learned
//!
//! Constant-size regression models over crossing-timestamp CDFs (paper §4.8).
//!
//! A tracking form's timestamp sequence is monotone, so the cumulative count
//! of events up to time `t` is a CDF the paper models with "popular
//! regressors" (Fig. 9) instead of storing the sequence:
//!
//! - [`RegressorKind::Linear`] — ordinary least squares line,
//! - [`RegressorKind::Quadratic`] / [`RegressorKind::Cubic`] — polynomial
//!   least squares (normal equations on normalized time),
//! - [`RegressorKind::PiecewiseLinear`] — equal-frequency knots,
//! - [`RegressorKind::Step`] — equi-width cumulative histogram.
//!
//! Lookup is `O(1)`/`O(log k)` and the per-edge footprint is independent of
//! the event count, which is where the paper's 99.96 % storage reduction
//! comes from. [`BufferedSeries`] adds the paper's limited-size update
//! buffer: events stream into a buffer of capacity `n`; on overflow a new
//! model is fitted and the buffer flushed, so queries always see model +
//! buffer (up to `2n` recent events exactly).

use std::fmt;

/// Cumulative-count predictor fitted to one timestamp sequence.
pub trait Regressor: fmt::Debug + Send + Sync {
    /// Predicted number of events with `time ≤ t`.
    fn predict(&self, t: f64) -> f64;
    /// Serialized parameter size in bytes (used for storage accounting).
    fn size_bytes(&self) -> usize;
}

/// Model families available for edge stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegressorKind {
    /// OLS straight line.
    Linear,
    /// Degree-2 polynomial.
    Quadratic,
    /// Degree-3 polynomial.
    Cubic,
    /// Piecewise-linear CDF with this many segments.
    PiecewiseLinear(usize),
    /// Equi-width cumulative histogram with this many bins.
    Step(usize),
}

impl RegressorKind {
    /// The model set the experiment harness sweeps (Fig. 14c,d).
    pub fn standard_set() -> Vec<RegressorKind> {
        vec![
            RegressorKind::Linear,
            RegressorKind::Quadratic,
            RegressorKind::Cubic,
            RegressorKind::PiecewiseLinear(8),
            RegressorKind::Step(16),
        ]
    }

    /// Harness label.
    pub fn label(&self) -> String {
        match self {
            RegressorKind::Linear => "linear".into(),
            RegressorKind::Quadratic => "quadratic".into(),
            RegressorKind::Cubic => "cubic".into(),
            RegressorKind::PiecewiseLinear(k) => format!("pwl-{k}"),
            RegressorKind::Step(b) => format!("step-{b}"),
        }
    }

    /// Fits a model of this kind to a *sorted* timestamp sequence. The
    /// fitted CDF maps `t → #events ≤ t`; predictions clamp to `[0, n]`.
    pub fn fit(&self, timestamps: &[f64]) -> Box<dyn Regressor> {
        debug_assert!(timestamps.windows(2).all(|w| w[0] <= w[1]), "timestamps must be sorted");
        let n = timestamps.len();
        if n == 0 {
            return Box::new(EmptyModel);
        }
        let t0 = timestamps[0];
        let t1 = timestamps[n - 1];
        if t1 - t0 < 1e-12 {
            // All events at one instant: a pure step.
            return Box::new(SingleStep { at: t0, count: n as f64 });
        }
        match *self {
            RegressorKind::Linear => Box::new(PolyModel::fit(timestamps, 1)),
            RegressorKind::Quadratic => Box::new(PolyModel::fit(timestamps, 2)),
            RegressorKind::Cubic => Box::new(PolyModel::fit(timestamps, 3)),
            RegressorKind::PiecewiseLinear(k) => Box::new(PwlModel::fit(timestamps, k.max(1))),
            RegressorKind::Step(b) => Box::new(StepModel::fit(timestamps, b.max(1))),
        }
    }
}

/// Model for an empty sequence.
#[derive(Debug)]
struct EmptyModel;

impl Regressor for EmptyModel {
    fn predict(&self, _t: f64) -> f64 {
        0.0
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

/// All events at a single instant.
#[derive(Debug)]
struct SingleStep {
    at: f64,
    count: f64,
}

impl Regressor for SingleStep {
    fn predict(&self, t: f64) -> f64 {
        if t >= self.at {
            self.count
        } else {
            0.0
        }
    }
    fn size_bytes(&self) -> usize {
        16
    }
}

/// Least-squares polynomial over normalized time.
#[derive(Debug)]
struct PolyModel {
    /// Coefficients, constant term first.
    coeffs: Vec<f64>,
    t_min: f64,
    t_scale: f64,
    n: f64,
    t_max: f64,
}

impl PolyModel {
    fn fit(ts: &[f64], degree: usize) -> Self {
        let n = ts.len();
        let t_min = ts[0];
        let t_scale = (ts[n - 1] - t_min).max(1e-12);
        let d = degree.min(n - 1).max(1);
        // Normal equations A^T A x = A^T y with x_i = normalized time powers.
        let k = d + 1;
        let mut ata = vec![vec![0.0f64; k]; k];
        let mut aty = vec![0.0f64; k];
        for (i, &t) in ts.iter().enumerate() {
            let x = (t - t_min) / t_scale;
            let y = (i + 1) as f64;
            let mut pow = vec![1.0; k];
            for p in 1..k {
                pow[p] = pow[p - 1] * x;
            }
            for r in 0..k {
                for c in 0..k {
                    ata[r][c] += pow[r] * pow[c];
                }
                aty[r] += pow[r] * y;
            }
        }
        let coeffs = solve_gauss(ata, aty);
        PolyModel { coeffs, t_min, t_scale, n: n as f64, t_max: ts[n - 1] }
    }
}

impl Regressor for PolyModel {
    fn predict(&self, t: f64) -> f64 {
        if t < self.t_min {
            return 0.0;
        }
        // Beyond the fitted range the CDF is flat at n.
        let x = ((t - self.t_min) / self.t_scale).min((self.t_max - self.t_min) / self.t_scale);
        let mut acc = 0.0;
        let mut pow = 1.0;
        for &c in &self.coeffs {
            acc += c * pow;
            pow *= x;
        }
        acc.clamp(0.0, self.n)
    }

    fn size_bytes(&self) -> usize {
        // coefficients + t_min + t_scale + n + t_max
        (self.coeffs.len() + 4) * 8
    }
}

/// Gaussian elimination with partial pivoting; falls back to a zero solution
/// on singular systems (callers then predict 0, clamped later).
fn solve_gauss(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv =
            (col..n).max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).unwrap());
        let piv = match piv {
            Some(p) if a[p][col].abs() > 1e-12 => p,
            _ => return vec![0.0; n],
        };
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = a[r][col] / diag;
            let pivot_row = a[col].clone();
            for (c, &pv) in pivot_row.iter().enumerate().skip(col) {
                a[r][c] -= f * pv;
            }
            b[r] -= f * b[col];
        }
    }
    (0..n).map(|i| b[i] / a[i][i]).collect()
}

/// Piecewise-linear CDF with equal-frequency knots.
///
/// Sequences with at most `segments` events fit inside the knot budget, so
/// they are stored as an *exact* step CDF (the knot table then simply records
/// every distinct timestamp with its cumulative count — still constant
/// size). Longer sequences interpolate between equal-frequency knots.
#[derive(Debug)]
struct PwlModel {
    /// Knots `(t, cumulative count)`, strictly increasing in `t`.
    knots: Vec<(f64, f64)>,
    /// Exact step mode (small sequences).
    step: bool,
}

impl PwlModel {
    fn fit(ts: &[f64], segments: usize) -> Self {
        let n = ts.len();
        if n <= segments {
            // Exact step CDF: one knot per distinct timestamp.
            let mut knots: Vec<(f64, f64)> = Vec::with_capacity(n);
            for (i, &t) in ts.iter().enumerate() {
                match knots.last_mut() {
                    Some((kt, kc)) if *kt == t => *kc = (i + 1) as f64,
                    _ => knots.push((t, (i + 1) as f64)),
                }
            }
            return PwlModel { knots, step: true };
        }
        let k = segments.min(n - 1).max(1);
        let mut knots = vec![(ts[0], 0.0)];
        for s in 1..=k {
            let idx = (s * (n - 1)) / k;
            let t = ts[idx];
            let cum = (idx + 1) as f64;
            // Guard strictly-increasing t.
            if t > knots.last().unwrap().0 {
                knots.push((t, cum));
            } else {
                knots.last_mut().unwrap().1 = cum;
            }
        }
        PwlModel { knots, step: false }
    }
}

impl Regressor for PwlModel {
    fn predict(&self, t: f64) -> f64 {
        let ks = &self.knots;
        if t < ks[0].0 {
            return 0.0;
        }
        if self.step {
            let hi = ks.partition_point(|&(kt, _)| kt <= t);
            return ks[hi - 1].1;
        }
        let last = ks[ks.len() - 1];
        if t >= last.0 {
            return last.1;
        }
        let hi = ks.partition_point(|&(kt, _)| kt <= t);
        let (t0, c0) = ks[hi - 1];
        let (t1, c1) = ks[hi];
        c0 + (c1 - c0) * (t - t0) / (t1 - t0)
    }

    fn size_bytes(&self) -> usize {
        self.knots.len() * 16 + 1
    }
}

/// Equi-width cumulative histogram; interpolates within bins.
#[derive(Debug)]
struct StepModel {
    t_min: f64,
    bin_width: f64,
    /// Cumulative counts at each bin's right edge.
    cum: Vec<u32>,
}

impl StepModel {
    fn fit(ts: &[f64], bins: usize) -> Self {
        let t_min = ts[0];
        let span = (ts[ts.len() - 1] - t_min).max(1e-12);
        let bin_width = span / bins as f64;
        let mut cum = vec![0u32; bins];
        for &t in ts {
            let b = (((t - t_min) / bin_width) as usize).min(bins - 1);
            cum[b] += 1;
        }
        for i in 1..bins {
            cum[i] += cum[i - 1];
        }
        StepModel { t_min, bin_width, cum }
    }
}

impl Regressor for StepModel {
    fn predict(&self, t: f64) -> f64 {
        if t < self.t_min {
            return 0.0;
        }
        let total = *self.cum.last().unwrap() as f64;
        let pos = (t - self.t_min) / self.bin_width;
        let b = pos as usize;
        if b >= self.cum.len() {
            return total;
        }
        let lo = if b == 0 { 0.0 } else { self.cum[b - 1] as f64 };
        let hi = self.cum[b] as f64;
        lo + (hi - lo) * (pos - b as f64)
    }

    fn size_bytes(&self) -> usize {
        16 + self.cum.len() * 4
    }
}

// ---------------------------------------------------------------------------
// Streaming buffer + frozen model (paper §4.8's update path).
// ---------------------------------------------------------------------------

/// A streaming timestamp series: a frozen model over flushed history plus a
/// bounded buffer of recent events. When the buffer reaches `capacity`, a
/// new model is refitted over (a sketch of) the full history and the buffer
/// empties — the paper's "build a new model and flush the buffer".
#[derive(Debug)]
pub struct BufferedSeries {
    kind: RegressorKind,
    capacity: usize,
    frozen: Box<dyn Regressor>,
    /// Events represented by `frozen`.
    frozen_count: usize,
    frozen_span: Option<(f64, f64)>,
    buffer: Vec<f64>,
}

impl BufferedSeries {
    /// Creates an empty series with the given model family and buffer size.
    pub fn new(kind: RegressorKind, capacity: usize) -> Self {
        BufferedSeries {
            kind,
            capacity: capacity.max(1),
            frozen: Box::new(EmptyModel),
            frozen_count: 0,
            frozen_span: None,
            buffer: Vec::new(),
        }
    }

    /// Appends an event (monotone non-decreasing time).
    pub fn push(&mut self, t: f64) {
        if let Some(&last) = self.buffer.last() {
            assert!(t >= last, "timestamps must be monotone");
        } else if let Some((_, hi)) = self.frozen_span {
            assert!(t >= hi, "timestamps must be monotone");
        }
        self.buffer.push(t);
        if self.buffer.len() >= self.capacity {
            self.flush();
        }
    }

    /// Refits the frozen model over reconstructed history + buffer, then
    /// clears the buffer. The old model is *sampled* (its inverse CDF at
    /// unit steps) rather than kept exactly — storage stays constant, at the
    /// price of the extra approximation the paper accepts.
    fn flush(&mut self) {
        let mut ts: Vec<f64> = Vec::with_capacity(self.frozen_count + self.buffer.len());
        if let Some((lo, hi)) = self.frozen_span {
            // Inverse-transform sample the frozen model at each integer rank
            // by bisection on its monotone CDF.
            for rank in 1..=self.frozen_count {
                let target = rank as f64;
                let (mut a, mut b) = (lo, hi);
                for _ in 0..40 {
                    let mid = 0.5 * (a + b);
                    if self.frozen.predict(mid) < target {
                        a = mid;
                    } else {
                        b = mid;
                    }
                }
                ts.push(0.5 * (a + b));
            }
        }
        ts.extend_from_slice(&self.buffer);
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.frozen = self.kind.fit(&ts);
        self.frozen_count = ts.len();
        self.frozen_span = ts.first().map(|&lo| (lo, *ts.last().unwrap()));
        self.buffer.clear();
    }

    /// Estimated number of events with `time ≤ t` (model + buffer scan).
    pub fn count_until(&self, t: f64) -> f64 {
        let model = self.frozen.predict(t).clamp(0.0, self.frozen_count as f64);
        model + stq_forms::events_until(&self.buffer, t) as f64
    }

    /// Total events seen.
    pub fn total(&self) -> usize {
        self.frozen_count + self.buffer.len()
    }

    /// Current storage footprint: model parameters + buffered timestamps.
    pub fn size_bytes(&self) -> usize {
        self.frozen.size_bytes() + self.buffer.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ts(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    /// Poisson-ish arrivals with rate drift (deterministic).
    fn drifting_ts(n: usize) -> Vec<f64> {
        let mut t = 0.0;
        (0..n)
            .map(|i| {
                t += 1.0 + 0.5 * ((i as f64) * 0.1).sin();
                t
            })
            .collect()
    }

    #[test]
    fn all_kinds_fit_and_bound() {
        let ts = drifting_ts(200);
        for kind in RegressorKind::standard_set() {
            let m = kind.fit(&ts);
            assert_eq!(m.predict(ts[0] - 10.0), 0.0, "{kind:?} before range");
            assert!((m.predict(ts[199] + 10.0) - 200.0).abs() < 20.0, "{kind:?} after range");
            for &t in &[ts[10], ts[100], ts[150]] {
                let p = m.predict(t);
                assert!((0.0..=200.0).contains(&p), "{kind:?} out of bounds: {p}");
            }
            assert!(m.size_bytes() > 0);
            assert!(m.size_bytes() < 300, "{kind:?} must be constant-size-small");
        }
    }

    #[test]
    fn linear_is_near_exact_on_uniform_arrivals() {
        let ts = uniform_ts(100);
        let m = RegressorKind::Linear.fit(&ts);
        for (i, &t) in ts.iter().enumerate() {
            let err = (m.predict(t) - (i + 1) as f64).abs();
            assert!(err < 2.0, "idx {i}: err {err}");
        }
    }

    #[test]
    fn pwl_interpolates_exactly_at_knots() {
        let ts = drifting_ts(64);
        let m = RegressorKind::PiecewiseLinear(8).fit(&ts);
        // The final knot carries the full count.
        assert!((m.predict(ts[63]) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn step_histogram_monotone() {
        let ts = drifting_ts(128);
        let m = RegressorKind::Step(16).fit(&ts);
        let mut prev = -1.0;
        let lo = ts[0] - 1.0;
        let hi = ts[127] + 1.0;
        for k in 0..200 {
            let t = lo + (hi - lo) * k as f64 / 199.0;
            let p = m.predict(t);
            assert!(p + 1e-9 >= prev, "step model must be monotone");
            prev = p;
        }
    }

    #[test]
    fn empty_and_degenerate_sequences() {
        for kind in RegressorKind::standard_set() {
            let m = kind.fit(&[]);
            assert_eq!(m.predict(0.0), 0.0);
            assert_eq!(m.size_bytes(), 0);
            // All events at the same instant.
            let m = kind.fit(&[5.0, 5.0, 5.0]);
            assert_eq!(m.predict(4.9), 0.0);
            assert_eq!(m.predict(5.0), 3.0);
            assert_eq!(m.predict(6.0), 3.0);
        }
    }

    #[test]
    fn higher_degree_fits_curved_cdf_better() {
        // Quadratic arrivals: density increases linearly.
        let ts: Vec<f64> = (1..=100).map(|i| (i as f64).sqrt() * 10.0).collect();
        let lin = RegressorKind::Linear.fit(&ts);
        let cub = RegressorKind::Cubic.fit(&ts);
        let mse = |m: &dyn Regressor| -> f64 {
            ts.iter()
                .enumerate()
                .map(|(i, &t)| {
                    let d = m.predict(t) - (i + 1) as f64;
                    d * d
                })
                .sum::<f64>()
                / ts.len() as f64
        };
        assert!(mse(cub.as_ref()) < mse(lin.as_ref()), "cubic must beat linear on curved CDF");
    }

    #[test]
    fn buffered_series_exact_until_flush() {
        let mut s = BufferedSeries::new(RegressorKind::Linear, 100);
        for t in drifting_ts(50) {
            s.push(t);
        }
        // Still all in the buffer: counts are exact.
        let ts = drifting_ts(50);
        assert_eq!(s.count_until(ts[24]), 25.0);
        assert_eq!(s.total(), 50);
    }

    #[test]
    fn buffered_series_flushes_and_stays_close() {
        let mut s = BufferedSeries::new(RegressorKind::PiecewiseLinear(16), 32);
        let ts = drifting_ts(200);
        for &t in &ts {
            s.push(t);
        }
        assert_eq!(s.total(), 200);
        // Post-flush estimates stay within a few events of truth.
        for &(idx, tol) in &[(49usize, 8.0), (99, 8.0), (199, 8.0)] {
            let truth = (idx + 1) as f64;
            let est = s.count_until(ts[idx]);
            assert!((est - truth).abs() <= tol, "idx {idx}: est {est} truth {truth}");
        }
        // Storage stays bounded regardless of event count.
        assert!(s.size_bytes() < 1000);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn buffered_series_rejects_regression_in_time() {
        let mut s = BufferedSeries::new(RegressorKind::Linear, 8);
        s.push(2.0);
        s.push(1.0);
    }
}
