//! # stq — In-Network Approximate Spatiotemporal Range Queries
//!
//! A from-scratch Rust implementation of *"In-Network Approximate and
//! Efficient Spatiotemporal Range Queries on Moving Objects"* (EDBT 2024):
//! privacy-aware distinct-count queries over moving objects, answered inside
//! the sensor network by integrating **discrete differential 1-forms** along
//! the perimeter of a **planar-graph** query region, with **sensor
//! placement** (sampling and submodular maximization) shrinking the set of
//! communication sensors and **constant-size regression models** replacing
//! per-edge timestamp logs.
//!
//! This crate is a facade: it re-exports the workspace's crates under one
//! roof and hosts the runnable examples and integration tests.
//!
//! ```
//! use stq::core::prelude::*;
//!
//! let scenario = Scenario::build(ScenarioConfig {
//!     junctions: 120,
//!     mix: WorkloadMix { random_waypoint: 10, commuter: 5, transit: 5 },
//!     ..Default::default()
//! });
//! let sampled = SampledGraph::unsampled(&scenario.sensing);
//! let (q, t0, t1) = scenario.make_queries(1, 0.05, 1_000.0, 1).remove(0);
//! let out = answer(&scenario.sensing, &sampled, &scenario.tracked.store, &q,
//!                  QueryKind::Transient(t0, t1), Approximation::Lower);
//! assert!(!out.miss);
//! ```

/// Euler-histogram + face-sampling baseline (paper §5.1.2).
pub use stq_baseline as baseline;
/// The framework: sensing graphs, tracking, sampled graphs, queries.
pub use stq_core as core;
/// Tracking forms and count theorems (paper §4.7).
pub use stq_forms as forms;
/// Plane geometry primitives and Delaunay triangulation.
pub use stq_geom as geom;
/// Constant-size regression models (paper §4.8).
pub use stq_learned as learned;
/// Road networks, trajectories, map matching (paper §3.2, §5.1).
pub use stq_mobility as mobility;
/// Sensor-network communication simulator (paper §4.6).
pub use stq_net as net;
/// Planar embeddings, duals, chains (paper §3.2–3.4).
pub use stq_planar as planar;
/// Concurrent sharded serving runtime with fault injection and metrics.
pub use stq_runtime as runtime;
/// Query-oblivious sensor sampling (paper §4.3).
pub use stq_sampling as sampling;
/// kd-trees, quadtrees, grid indexes.
pub use stq_spatial as spatial;
/// Submodular maximization (paper §4.4).
pub use stq_submod as submod;
/// Standing subscriptions maintained by count deltas.
pub use stq_subscribe as subscribe;
