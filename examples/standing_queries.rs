//! Standing queries: register a region once, then watch its population
//! bracket move with the live stream.
//!
//! Three monitors subscribe to city regions through the sharded runtime.
//! Each ingested crossing on a subscribed boundary arrives as a count
//! *delta* — no query re-executes — yet at any instant the maintained
//! `[lower, upper]` bracket is **bit-identical** to re-running the region
//! as a snapshot query, and a forced re-snapshot epoch (the same sound
//! hand-off the supervisor performs after a crash) lands on the same bits.
//!
//! ```sh
//! cargo run --release -p stq --example standing_queries
//! ```

use stq::core::prelude::*;
use stq::core::tracker::Crossing;
use stq::runtime::{QuerySpec, Runtime, RuntimeConfig, UpdateCause};

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 300,
        mix: WorkloadMix { random_waypoint: 40, commuter: 40, transit: 20 },
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids =
        stq::sampling::sample(stq::sampling::SamplingMethod::QuadTree, &cands, cands.len() / 4, 5);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);

    let rt = Runtime::new(
        scenario.sensing.clone(),
        sampled,
        &scenario.tracked.store,
        RuntimeConfig { num_shards: 4, ..RuntimeConfig::default() },
    );

    // Register three monitors. Each handle carries a push channel: the
    // baseline arrives first, then one update per boundary delta.
    let mut monitors = Vec::new();
    for (region, _, _) in scenario.make_queries(8, 0.08, 1_500.0, 41) {
        if let Ok(h) = rt.subscribe(region.clone(), Approximation::Lower) {
            monitors.push((h, region));
            if monitors.len() == 3 {
                break;
            }
        }
    }
    println!("registered {} standing queries:", monitors.len());
    for (h, _) in &monitors {
        println!(
            "  {}: baseline [{:.0}, {:.0}] over {} boundary edges (plan cache hit: {})",
            h.id, h.baseline.lower, h.baseline.upper, h.boundary_edges, h.plan_cache_hit
        );
    }

    // Stream live crossings; every tick the brackets are already current —
    // nothing re-executes.
    let ne = scenario.sensing.num_edges();
    let t0 = scenario.config.trajectory.duration;
    let mut sent = 0usize;
    println!("\n{:>5} | {:>20} | {:>20} | {:>20}", "tick", "sub-0", "sub-1", "sub-2");
    for tick in 0..5 {
        for i in 0..400 {
            rt.ingest(Crossing {
                time: t0 + 1.0 + (sent + i) as f64 * 0.05,
                edge: (sent + i) % ne,
                forward: (sent + i) % 3 != 0,
            })
            .expect("ingest");
        }
        sent += 400;
        rt.flush_ingest();
        let cells: Vec<String> = monitors
            .iter()
            .map(|(h, _)| {
                let b = rt.standing_bracket(h.id).unwrap();
                format!("{:.0} in [{:.0}, {:.0}]", b.value, b.lower, b.upper)
            })
            .collect();
        println!("{tick:>5} | {:>20} | {:>20} | {:>20}", cells[0], cells[1], cells[2]);
    }

    // Drain one monitor's channel: a baseline, then pure deltas.
    let (h, region) = &monitors[0];
    let mut counts = [0usize; 4];
    while let Ok(u) = h.updates.try_recv() {
        match u.cause {
            UpdateCause::Registered => counts[0] += 1,
            UpdateCause::Delta => counts[1] += 1,
            UpdateCause::Resnapshot => counts[2] += 1,
            UpdateCause::Coalesced => counts[3] += 1,
        }
    }
    println!(
        "\n{} received {} baseline + {} delta pushes (p95 push latency: see metrics)",
        h.id, counts[0], counts[1]
    );

    // The receipts: the maintained bracket equals re-execution bitwise, and
    // a forced re-snapshot epoch (crash-recovery's hand-off) changes nothing.
    let b = rt.standing_bracket(h.id).unwrap();
    let served =
        rt.query(QuerySpec::new(region.clone(), QueryKind::Snapshot(1.0e12), Approximation::Lower));
    assert_eq!(b.value.to_bits(), served.value.to_bits());
    assert_eq!(b.lower.to_bits(), served.lower.to_bits());
    assert_eq!(b.upper.to_bits(), served.upper.to_bits());
    println!(
        "delta-maintained {:.0} in [{:.0}, {:.0}] == re-executed snapshot, bit for bit",
        b.value, b.lower, b.upper
    );
    rt.resnapshot_subscriptions();
    let after = rt.standing_bracket(h.id).unwrap();
    assert_eq!(after.value.to_bits(), b.value.to_bits());
    println!(
        "epoch {} -> {}: re-snapshot reproduced the same bits ({} deltas folded away)",
        b.epoch, after.epoch, b.deltas
    );

    println!("\n{}", rt.metrics().report());
    rt.shutdown();
}
