//! Cell-tower load monitoring (the paper's Figure 1 scenario).
//!
//! A city operator monitors how many distinct users are inside each tower's
//! service region over time, comparing sensor-selection strategies —
//! including the query-adaptive submodular method when the monitoring
//! regions are known a priori.
//!
//! ```sh
//! cargo run --release -p stq --example city_traffic
//! ```

use std::collections::HashSet;

use stq::core::prelude::*;
use stq::sampling::{sample, SamplingMethod};

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 500,
        mix: WorkloadMix { random_waypoint: 50, commuter: 60, transit: 25 },
        ..Default::default()
    });
    let sensing = &scenario.sensing;
    let duration = scenario.config.trajectory.duration;

    // Service regions: a 3×3 tiling of the city — each tile is one cell
    // tower's coverage, queried repeatedly (so their layout is known ahead
    // of time: ideal for the submodular method).
    let bb = sensing.road().bbox();
    let mut towers = Vec::new();
    for ty in 0..3 {
        for tx in 0..3 {
            let lo = stq::geom::Point::new(
                bb.min.x + bb.width() * tx as f64 / 3.0,
                bb.min.y + bb.height() * ty as f64 / 3.0,
            );
            let hi = stq::geom::Point::new(
                bb.min.x + bb.width() * (tx + 1) as f64 / 3.0,
                bb.min.y + bb.height() * (ty + 1) as f64 / 3.0,
            );
            let q = QueryRegion::from_rect(sensing, stq::geom::Rect::from_corners(lo, hi));
            towers.push(q);
        }
    }
    let historical: Vec<Vec<usize>> = towers
        .iter()
        .map(|q| {
            let mut v: Vec<usize> = q.junctions.iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    // Three deployments at comparable cost.
    let cands = sensing.sensor_candidates();
    let m = cands.len() / 6;
    let uniform_ids = sample(SamplingMethod::Uniform, &cands, m, 9);
    let uniform = SampledGraph::from_sensors(
        sensing,
        &uniform_ids.iter().map(|&x| x as usize).collect::<Vec<_>>(),
        Connectivity::Triangulation,
    );
    let quad_ids = sample(SamplingMethod::QuadTree, &cands, m, 9);
    let quadtree = SampledGraph::from_sensors(
        sensing,
        &quad_ids.iter().map(|&x| x as usize).collect::<Vec<_>>(),
        Connectivity::Triangulation,
    );
    let budget = uniform.num_monitored_edges() as f64;
    let submod = SampledGraph::from_submodular(sensing, &historical, budget);

    println!(
        "deployments: uniform {} links | quadtree {} links | submodular {} links",
        uniform.num_monitored_edges(),
        quadtree.num_monitored_edges(),
        submod.num_monitored_edges()
    );

    // Monitor tower loads at four times of day.
    println!("\ntower loads (exact / uniform / quadtree / submodular):");
    let times: Vec<f64> = (1..=4).map(|k| duration * k as f64 / 5.0).collect();
    let mut errs = [0.0f64; 3];
    let mut n_err = 0usize;
    for (ti, q) in towers.iter().enumerate() {
        print!("  tower {ti}: ");
        for &t in &times {
            let kind = QueryKind::Snapshot(t);
            let exact = ground_truth(sensing, &scenario.tracked.store, q, kind);
            let vals: Vec<f64> = [&uniform, &quadtree, &submod]
                .iter()
                .map(|g| {
                    answer(sensing, g, &scenario.tracked.store, q, kind, Approximation::Lower).value
                })
                .collect();
            if exact > 0.0 {
                for (k, v) in vals.iter().enumerate() {
                    errs[k] += (exact - v).abs() / exact;
                }
                n_err += 1;
            }
            print!("{:.0}/{:.0}/{:.0}/{:.0}  ", exact, vals[0], vals[1], vals[2]);
        }
        println!();
    }
    println!("\nmean relative error over {n_err} tower-readings:");
    for (label, e) in ["uniform", "quadtree", "submodular"].iter().zip(errs) {
        println!("  {label:<11} {:.1}%", 100.0 * e / n_err as f64);
    }

    // Communication: perimeter sensors contacted vs flooding every sensor
    // in the tower region (what an axis-aligned in-network system must do).
    let q = &towers[4]; // the central tower
    let out = answer(
        sensing,
        &submod,
        &scenario.tracked.store,
        q,
        QueryKind::Snapshot(times[0]),
        Approximation::Lower,
    );
    let flood = sensing.sensors_in_rect(&q.rect).len();
    println!(
        "\ncentral tower communication: {} perimeter sensors vs {} flooded ({}% saved)",
        out.nodes_accessed,
        flood,
        (100.0 * (1.0 - out.nodes_accessed as f64 / flood.max(1) as f64)).round()
    );

    // Transient counts feed a simple flow dashboard (net user change).
    println!("\nnet user change per tower over the busiest window:");
    let (w0, w1) = (duration * 0.3, duration * 0.6);
    for (ti, q) in towers.iter().enumerate() {
        let net = answer(
            sensing,
            &submod,
            &scenario.tracked.store,
            q,
            QueryKind::Transient(w0, w1),
            Approximation::Lower,
        );
        let exact = ground_truth(sensing, &scenario.tracked.store, q, QueryKind::Transient(w0, w1));
        println!("  tower {ti}: {:+.0} (exact {:+.0})", net.value, exact);
    }

    // Sanity: the nine towers tile the city, so summing exact tower loads
    // gives the city-wide population.
    let all: HashSet<usize> = sensing.road().junctions().collect();
    let all_b = sensing.boundary_of(&all, None);
    let city = stq::forms::snapshot_count(&scenario.tracked.store, &all_b, times[0]);
    let sum: f64 = towers
        .iter()
        .map(|q| ground_truth(sensing, &scenario.tracked.store, q, QueryKind::Snapshot(times[0])))
        .sum();
    println!("\ncity-wide population {city:.0} vs sum of towers {sum:.0}");
}
