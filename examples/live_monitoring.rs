//! Live monitoring with bounded memory and differential privacy.
//!
//! Crossing events arrive as an out-of-order stream (as radio networks
//! deliver them); a watermark tracker re-orders them, a streaming learned
//! store absorbs them in constant memory per sensor, and analysts query the
//! deployment through an ε-differentially-private lens (the paper's [20]
//! extension).
//!
//! ```sh
//! cargo run --release -p stq --example live_monitoring
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq::core::prelude::*;
use stq::forms::{CountSource, PrivateCounts};
use stq::learned::RegressorKind;

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 300,
        mix: WorkloadMix { random_waypoint: 40, commuter: 40, transit: 20 },
        ..Default::default()
    });
    let sensing = &scenario.sensing;
    let duration = scenario.config.trajectory.duration;

    // Re-create the crossing stream with simulated network jitter: each
    // event is delayed by up to 20 s before reaching the collector.
    let mut rng = StdRng::seed_from_u64(7);
    let mut arrivals: Vec<(f64, Crossing)> = scenario
        .trajectories
        .iter()
        .flat_map(|t| crossings_of(sensing, t))
        .map(|c| (c.time + rng.gen_range(0.0..20.0), c))
        .collect();
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!("streaming {} crossing events with ≤20 s network jitter", arrivals.len());

    // Watermark-ordered ingestion into a bounded-memory learned store.
    let mut tracker = StreamTracker::new(25.0);
    let mut store =
        StreamingLearnedStore::new(sensing.num_edges(), RegressorKind::PiecewiseLinear(16), 32);
    let mut late = 0usize;
    for (_, ev) in arrivals {
        match tracker.offer(ev) {
            Ok(released) => {
                for r in released {
                    store.record(r);
                }
            }
            Err(_) => late += 1,
        }
    }
    for r in tracker.finish() {
        store.record(r);
    }
    println!(
        "ingested {} events ({late} dropped as too-late); store footprint {} KiB \
         (exact logs would be {} KiB)",
        store.total_events(),
        store.storage_bytes() / 1024,
        scenario.tracked.store.storage_bytes() / 1024,
    );

    // A city-centre monitoring region.
    let bb = sensing.road().bbox();
    let q = QueryRegion::from_rect(
        sensing,
        stq::geom::Rect::centered(bb.center(), bb.width() * 0.4, bb.height() * 0.4),
    );
    let boundary = sensing.boundary_of(&q.junctions, None);

    // Exact vs streaming-store vs private answers over the day.
    let private = PrivateCounts::new(
        LearnedStore::fit(&scenario.tracked.store, None, RegressorKind::PiecewiseLinear(16)),
        1.0,   // ε
        2.0,   // sensitivity: one object crosses a directed edge ≤ 2 times here
        600.0, // 10-minute release buckets
        2024,
    );
    println!(
        "\nnoise scale b = {:.1}; predicted query sd ±{:.1} over {} boundary edges",
        private.noise_scale(),
        private.expected_query_sd(boundary.len()),
        boundary.len()
    );
    println!("\n{:>8} | {:>8} | {:>10} | {:>14}", "t", "exact", "streaming", "private (ε=1)");
    for k in 1..=6 {
        let t = duration * k as f64 / 7.0;
        let exact = stq::forms::snapshot_count(&scenario.tracked.store, &boundary, t);
        let streamed = stq::forms::snapshot_count(&store, &boundary, t);
        let noisy = stq::forms::snapshot_count(&private, &boundary, t);
        println!("{t:>8.0} | {exact:>8.0} | {streamed:>10.1} | {noisy:>14.1}");
    }
    println!("\nthe streaming store tracks the exact counts with bounded memory; the");
    println!("private view adds calibrated Laplace noise per 10-minute release.");
}
