//! Quickstart: build a city, track a workload, and answer spatiotemporal
//! range count queries on a sampled sensing graph.
//!
//! ```sh
//! cargo run --release -p stq --example quickstart
//! ```

use stq::core::prelude::*;
use stq::sampling::{sample, SamplingMethod};

fn main() {
    // 1. A synthetic city (the paper uses Beijing's road network; we
    //    generate a Delaunay city with irregular blocks) plus a mixed
    //    workload of random-waypoint, commuter, and transit objects.
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 400,
        mix: WorkloadMix { random_waypoint: 40, commuter: 30, transit: 20 },
        ..Default::default()
    });
    let sensing = &scenario.sensing;
    println!(
        "city: {} junctions, {} roads, {} placeable sensors",
        sensing.road().num_junctions(),
        sensing.num_edges(),
        sensing.num_sensors()
    );
    println!(
        "workload: {} objects, {} crossing events tracked",
        scenario.trajectories.len(),
        scenario.tracked.num_crossings
    );

    // 2. Select 20% of sensors with QuadTree sampling and connect them by
    //    Delaunay triangulation, materialized as shortest paths in G.
    let cands = sensing.sensor_candidates();
    let m = cands.len() / 5;
    let ids = sample(SamplingMethod::QuadTree, &cands, m, 42);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled = SampledGraph::from_sensors(sensing, &faces, Connectivity::Triangulation);
    println!(
        "sampled graph: {} communication sensors ({:.1}%), {} monitored links ({:.1}%)",
        sampled.sensors().len(),
        100.0 * sampled.size_fraction(sensing),
        sampled.num_monitored_edges(),
        100.0 * sampled.num_monitored_edges() as f64 / sensing.num_edges() as f64,
    );

    // 3. Ask queries: lower-bound approximate counts vs the exact answer
    //    from the unsampled graph.
    let queries = scenario.make_queries(5, 0.05, 4_000.0, 7);
    for (i, (q, t0, t1)) in queries.iter().enumerate() {
        let kind = QueryKind::Snapshot(*t0);
        let exact = ground_truth(sensing, &scenario.tracked.store, q, kind);
        let approx =
            answer(sensing, &sampled, &scenario.tracked.store, q, kind, Approximation::Lower);
        let err = relative_error(exact, approx.value)
            .map(|e| format!("{:.1}%", e * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "query {i}: snapshot@{t0:.0}  exact={exact:<5.0} approx={:<5.0} rel.err={err} \
             ({} sensors contacted{})",
            approx.value,
            approx.nodes_accessed,
            if approx.miss { ", MISS" } else { "" },
        );

        // Transient count over the window [t0, t1].
        let tkind = QueryKind::Transient(*t0, *t1);
        let texact = ground_truth(sensing, &scenario.tracked.store, q, tkind);
        let tapprox =
            answer(sensing, &sampled, &scenario.tracked.store, q, tkind, Approximation::Lower);
        println!(
            "         transient[{t0:.0},{t1:.0}] exact={texact:<5.0} approx={:<5.0}",
            tapprox.value
        );
    }

    // 4. Swap the exact per-edge timestamp logs for constant-size linear
    //    regression models (the paper's learned store).
    let learned = LearnedStore::fit(
        &scenario.tracked.store,
        Some(sampled.monitored()),
        stq::learned::RegressorKind::Linear,
    );
    use stq::forms::CountSource;
    println!(
        "storage: exact logs {} KiB → learned models {} KiB",
        scenario.tracked.store.storage_bytes() / 1024,
        learned.storage_bytes().max(1024) / 1024,
    );
    let (q, t0, _) = &queries[0];
    let kind = QueryKind::Snapshot(*t0);
    let exact_store =
        answer(sensing, &sampled, &scenario.tracked.store, q, kind, Approximation::Lower);
    let model_store = answer(sensing, &sampled, &learned, q, kind, Approximation::Lower);
    println!(
        "learned-store check: exact-store {:.0} vs model-store {:.1}",
        exact_store.value, model_store.value
    );
}
