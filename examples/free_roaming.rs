//! Free-roaming objects over a continuous domain (paper §4.2's air/sea
//! discussion): no road network constrains the movement, so crossings are
//! detected geometrically against a planar subdivision, then counted with
//! the same differential forms.
//!
//! ```sh
//! cargo run --release -p stq --example free_roaming
//! ```

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stq::core::prelude::*;
use stq::forms::{snapshot_count, FormStore};
use stq::geom::{triangulate, Point};
use stq::planar::Embedding;

fn main() {
    // Sensing field: a Delaunay subdivision over 60 scattered buoys — think
    // maritime traffic cells.
    let mut rng = StdRng::seed_from_u64(20_24);
    let buoys: Vec<Point> =
        (0..60).map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0))).collect();
    let tri = triangulate(&buoys);
    let emb = Embedding::from_geometry(buoys, tri.edges()).expect("triangulations are plane");
    let field = Subdivision::new(emb);
    println!(
        "sensing field: {} cells over {} boundary edges",
        field.num_cells(),
        field.num_edges()
    );

    // 25 vessels on smooth random courses, sampled every 2 s for 600 s.
    let mut store = FormStore::new(field.num_edges());
    let mut paths = Vec::new();
    for _v in 0..25 {
        let mut pos = Point::new(rng.gen_range(-10.0..110.0), rng.gen_range(-10.0..110.0));
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let speed = rng.gen_range(0.5..2.0);
        let mut path = vec![(0.0, pos)];
        let mut t = 0.0;
        while t < 600.0 {
            t += 2.0;
            heading += rng.gen_range(-0.3..0.3);
            pos = pos + Point::new(heading.cos(), heading.sin()) * (speed * 2.0);
            // Bounce off the extended domain walls.
            if !(-20.0..=120.0).contains(&pos.x) || !(-20.0..=120.0).contains(&pos.y) {
                heading += std::f64::consts::PI;
                pos = Point::new(pos.x.clamp(-20.0, 120.0), pos.y.clamp(-20.0, 120.0));
            }
            path.push((t, pos));
        }
        paths.push(path);
    }
    let mut events = 0usize;
    // Merge all vessels' crossings time-sorted before recording.
    let mut all: Vec<(f64, usize, bool)> = Vec::new();
    for path in &paths {
        for w in path.windows(2) {
            let (t0, a) = w[0];
            let (t1, b) = w[1];
            for (frac, e, fwd) in field.leg_crossings(a, b) {
                all.push((t0 + (t1 - t0) * frac, e, fwd));
            }
        }
    }
    all.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    for &(t, e, fwd) in &all {
        store.record(e, fwd, t);
        events += 1;
    }
    println!("tracked {events} cell-boundary crossings from {} vessels", paths.len());

    // Query: how many vessels are inside a patrol zone (a union of cells)?
    // Pick the cells around the field centre.
    let centre = Point::new(50.0, 50.0);
    let mut zone: HashSet<usize> = HashSet::new();
    for dx in [-12.0, 0.0, 12.0] {
        for dy in [-12.0, 0.0, 12.0] {
            if let Some(f) = field.locate(centre + Point::new(dx, dy)) {
                zone.insert(f);
            }
        }
    }
    println!("patrol zone: {} cells", zone.len());
    let boundary = field.region_boundary(&zone);

    // Ground truth by locating each vessel geometrically. Note: vessels
    // that started *inside* the zone at t=0 were never seen entering, so
    // the forms report the population change relative to t=0 — exactly the
    // paper's tracking semantics, where objects enter through the network
    // boundary. Count them for calibration.
    let initially_inside = paths
        .iter()
        .filter(|p| field.locate(p[0].1).map(|f| zone.contains(&f)).unwrap_or(false))
        .count() as f64;

    println!("\n t    forms  forms+init  truth");
    for k in 1..=6 {
        let t = 100.0 * k as f64;
        let formed = snapshot_count(&store, &boundary, t);
        let truth = paths
            .iter()
            .filter(|p| {
                let idx = p.partition_point(|&(pt, _)| pt <= t);
                let pos = p[idx.saturating_sub(1)].1;
                field.locate(pos).map(|f| zone.contains(&f)).unwrap_or(false)
            })
            .count();
        println!("{t:>4.0}  {formed:>5.0}  {:>10.0}  {truth:>5}", formed + initially_inside);
        assert_eq!(
            formed + initially_inside,
            truth as f64,
            "forms (plus initial calibration) must match geometric truth"
        );
    }
    println!("\nvessels initially inside the zone: {initially_inside:.0}");
    println!("every probe matched the geometric ground truth exactly.");
}
