//! Serving queries from an unreliable sensor network.
//!
//! The sharded runtime (`stq::runtime`) answers range-count queries while a
//! seeded `FaultPlan` drops, delays and duplicates shard messages and takes
//! one shard down entirely. Fault-free answers are bit-identical to the
//! synchronous query path; under faults the runtime retries with
//! exponential backoff and, past the retry budget, degrades gracefully: it
//! returns widened `[lower, upper]` bounds plus an honest `coverage`
//! fraction instead of failing.
//!
//! ```sh
//! cargo run --release -p stq --example faulty_network
//! ```

use std::time::Duration;

use stq::core::prelude::*;
use stq::core::query::evaluate;
use stq::runtime::{CrashWindow, FaultPlan, QuerySpec, Runtime, RuntimeConfig};

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        junctions: 200,
        mix: WorkloadMix { random_waypoint: 25, commuter: 15, transit: 8 },
        seed: 9,
        ..Default::default()
    });
    let cands = scenario.sensing.sensor_candidates();
    let ids =
        stq::sampling::sample(stq::sampling::SamplingMethod::QuadTree, &cands, cands.len() / 4, 5);
    let faces: Vec<usize> = ids.into_iter().map(|x| x as usize).collect();
    let sampled =
        SampledGraph::from_sensors(&scenario.sensing, &faces, Connectivity::Triangulation);

    // A hostile network: 10% message loss, occasional 1–3 ms delays, a few
    // duplicated responses, and shard 1 crashed for its first 10 messages
    // (it reboots mid-run, so later queries see full coverage again).
    let fault = FaultPlan::lossy(42, 0.10, 0.15, 0.05, 3).with_crash(CrashWindow {
        node: 1,
        after_messages: 0,
        lasts_messages: 10,
    });
    let cfg = RuntimeConfig {
        num_shards: 4,
        dispatchers: 2,
        shard_timeout: Duration::from_millis(5),
        max_retries: 3,
        fault,
        ..RuntimeConfig::default()
    };
    let rt = Runtime::new(scenario.sensing.clone(), sampled.clone(), &scenario.tracked.store, cfg);

    println!(
        "{:>3} | {:>9} | {:>9} | {:>9} | {:>9} | {:>6} | {:>6}",
        "#", "sync", "served", "lower", "upper", "cover", "retry"
    );
    for (i, (region, t0, t1)) in
        scenario.make_queries(10, 0.08, 1_500.0, 17).into_iter().enumerate()
    {
        let spec = QuerySpec::new(region, QueryKind::Transient(t0, t1), Approximation::Lower);
        // The synchronous single-threaded path the runtime must bracket.
        let covered = sampled.resolve_lower(&spec.region.junctions);
        if covered.is_empty() {
            continue;
        }
        let boundary = scenario.sensing.boundary_of(&covered, Some(sampled.monitored()));
        let sync = evaluate(&scenario.tracked.store, &boundary, spec.kind);

        let served = rt.query(spec);
        assert!(served.lower <= sync && sync <= served.upper, "bounds must bracket the sync value");
        println!(
            "{i:>3} | {sync:>9.1} | {:>9.1} | {:>9.1} | {:>9.1} | {:>6.2} | {:>6}{}",
            served.value,
            served.lower,
            served.upper,
            served.coverage,
            served.retries,
            if served.degraded { "  DEGRADED" } else { "" }
        );
    }

    println!("\n{}", rt.metrics().report());
    rt.shutdown();
    println!("\nevery answer — even the degraded ones — brackets the synchronous value;");
    println!("coverage tells the analyst exactly how much of the perimeter reported.");
}
