//! The double-counting problem, demonstrated (paper §3.1.2).
//!
//! A vehicle drives along a highway, exits at a ramp, takes the service
//! road, and re-enters at the next interchange — repeatedly. A naive
//! counter that increments on every entry reports it several times; the
//! paired incoming/outgoing tracking forms cancel re-entries and report the
//! distinct count, with no vehicle identifier ever stored.
//!
//! ```sh
//! cargo run --release -p stq --example highway_transit
//! ```

use std::collections::HashSet;

use stq::core::prelude::*;
use stq::forms::{gross_flow, snapshot_count};
use stq::mobility::gen::highway;
use stq::mobility::Trajectory;

fn main() {
    // A 6-interchange highway: junctions 0..6 on the highway, 6..12 on the
    // parallel service road, ramps at both ends of the corridor.
    let n = 6;
    let road = highway(n, 2).expect("highway generation");
    let sensing = SensingGraph::new(road);
    let v_ext = sensing.road().v_ext();
    let gates = sensing.road().gate_junctions();

    // The monitored region: the highway lanes only (junctions 0..n).
    let region: HashSet<usize> = (0..n).collect();

    // One weaving vehicle: enters the highway, hops off at each interchange
    // onto the service road, and back on at the next one.
    let mut visits = vec![(0.0, v_ext), (0.0, gates[0])];
    let mut t = 0.0;
    // Walk from the gate onto highway junction 0 if the gate is elsewhere.
    if gates[0] != 0 {
        let (path, _) = sensing.road().shortest_path(gates[0], 0).expect("path to highway");
        for &v in path.iter().skip(1) {
            visits.push((t, v));
        }
    }
    for i in 0..n - 1 {
        t += 10.0;
        visits.push((t, n + i)); // exit to service road
        t += 10.0;
        visits.push((t, n + i + 1)); // drive along service road
        t += 10.0;
        visits.push((t, i + 1)); // re-enter the highway
    }
    let weaving = Trajectory { id: 1, visits };
    assert!(weaving.validate(sensing.road()), "weaving trajectory must be a road walk");

    // A second vehicle that just stays on the highway.
    let mut visits2 = vec![(0.0, v_ext), (0.0, gates[0])];
    if gates[0] != 0 {
        let (path, _) = sensing.road().shortest_path(gates[0], 0).expect("path");
        for &v in path.iter().skip(1) {
            visits2.push((0.0, v));
        }
    }
    for (k, j) in (1..n).enumerate() {
        visits2.push((5.0 + 30.0 * k as f64, j));
    }
    let steady = Trajectory { id: 2, visits: visits2 };
    assert!(steady.validate(sensing.road()));

    let tracked = ingest(&sensing, &[weaving, steady]);
    let boundary = sensing.boundary_of(&region, None);
    let t_end = t + 10.0;

    // Naive counting: every boundary entry increments, exits ignored.
    let (entries, exits) = gross_flow(&tracked.store, &boundary, -1.0, t_end);
    let naive = entries;

    // Differential forms: entries minus exits (Theorem 4.1).
    let forms = snapshot_count(&tracked.store, &boundary, t_end);
    let oracle = tracked.oracle.snapshot_count(&|j| region.contains(&j), t_end);

    println!("highway with {n} interchanges; region = highway lanes only\n");
    println!("gross boundary entries (naive count): {naive:.0}");
    println!("gross boundary exits:                 {exits:.0}");
    println!("differential-form count (no IDs):     {forms:.0}");
    println!("oracle distinct count (with IDs):     {oracle}");
    assert_eq!(forms, oracle as f64, "forms must match the oracle exactly");
    assert!(naive > forms, "the naive counter must overcount the weaving vehicle");
    println!(
        "\nthe weaving vehicle was naively counted {:.0}x; the paired ξ⁺/ξ⁻ forms cancel \
         every exit/re-entry without storing identifiers.",
        naive - 1.0
    );

    // Timeline of the highway population.
    println!("\nhighway population over time (forms vs oracle):");
    for k in 0..=8 {
        let tk = t_end * k as f64 / 8.0;
        let f = snapshot_count(&tracked.store, &boundary, tk);
        let o = tracked.oracle.snapshot_count(&|j| region.contains(&j), tk);
        println!("  t={tk:>6.1}  forms={f:.0}  oracle={o}");
        assert_eq!(f, o as f64);
    }

    // Transient count over the weaving window: net change (Theorem 4.3).
    let net = stq::forms::transient_count(&tracked.store, &boundary, 1.0, t_end);
    println!("\nnet change over the weaving window: {net:+.0}");
}
